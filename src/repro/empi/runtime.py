"""The eMPI runtime: send / receive / barrier over the TIE ports.

Data messages travel on the per-source in-order streams the TIE hardware
reassembles; synchronization tokens travel as single *request* flits (the
SUB-TYPE the paper reserves for requests), so barriers never perturb data
reassembly and never touch the MPMMU — the core claim of the paper.

Two barrier algorithms are provided:

* ``central`` — workers send an ARRIVE token to rank 0, which answers with
  RELEASE tokens; O(P) tokens, two token hops of latency;
* ``dissemination`` — ceil(log2 P) rounds of pairwise tokens; more
  traffic, lower latency at larger core counts.

Tokens carry an epoch (mod 256) so back-to-back barriers cannot steal each
other's tokens; early tokens are stashed and matched later, giving the
runtime MPI-like out-of-band tolerance with a tiny footprint.
"""

from __future__ import annotations

import enum
import typing

from repro.empi.collectives import (
    CollectiveAlgorithm,
    ReduceOp,
    combine_cost,
    combine_values,
    ring_segments,
)
from repro.empi.requests import (
    NOTE_CP_ENTER,
    NOTE_CP_EXIT,
    NOTE_CP_HOP,
    RESCHEDULE,
    ProgressEngine,
    Request,
)
from repro.errors import ProgramError
from repro.mem.values import pack_doubles, unpack_doubles

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pe.program import Program, ProgramContext


class BarrierAlgorithm(enum.Enum):
    CENTRAL = "central"
    DISSEMINATION = "dissemination"


class _Token(enum.IntEnum):
    ARRIVE = 1
    RELEASE = 2
    DISSEM = 3


def _encode(opcode: _Token, epoch: int, aux: int = 0) -> int:
    return (int(opcode) << 16) | ((epoch & 0xFF) << 8) | (aux & 0xFF)


def _decode(word: int) -> tuple[int, int, int]:
    return (word >> 16) & 0xFF, (word >> 8) & 0xFF, word & 0xFF


class Empi:
    """Per-rank eMPI endpoint; bound to a program context as ``ctx.empi``."""

    def __init__(
        self,
        ctx: "ProgramContext",
        barrier_algorithm: BarrierAlgorithm | str = BarrierAlgorithm.CENTRAL,
    ) -> None:
        if isinstance(barrier_algorithm, str):
            barrier_algorithm = BarrierAlgorithm(barrier_algorithm.lower())
        self.ctx = ctx
        self.barrier_algorithm = barrier_algorithm
        self._epoch = 0
        self._dissem_epoch = 0
        #: Early tokens: (src_node, opcode, epoch, aux).
        self._stash: list[tuple[int, int, int, int]] = []
        self.barriers = 0
        #: The cooperative progress engine driving non-blocking requests.
        #: Timeouts (off by default) arm both the engine's waits and the
        #: hw-collective descriptor spin loops below, so a recovery that
        #: fails raises a typed error naming rank/op/algorithm instead
        #: of spinning silently.
        self.engine = ProgressEngine()
        self.engine.configure_timeout(
            ctx.rank,
            getattr(ctx, "empi_timeout_cycles", 0),
            getattr(ctx, "empi_timeout_retries", 3),
            fault_context=getattr(ctx, "fault_context", None),
        )
        #: Critical-path attribution (TelemetryConfig.attribution): when
        #: armed, every collective is bracketed with zero-cycle cp+/cp-
        #: notes and its completed sends/receives emit cph hop notes, so
        #: the extractor can thread causal edges through the op.  Off by
        #: default: _cp_key stays None and no note is ever built.
        self._cp = bool(getattr(ctx, "attribution", False))
        self._cp_depth = 0
        self._cp_counts: dict[str, int] = {}
        self._cp_key: str | None = None

    def _cp_span(self, label: str, body: "Program") -> "Program":
        """Bracket one collective occurrence with cp+/cp- notes.

        The occurrence key is ``label#k`` (k = how many times this rank
        ran the label), which aligns across ranks by the SPMD same-order
        rule.  Nested public collectives (allreduce = reduce + bcast) run
        bare under the depth guard, so their hops attribute to the outer
        op.
        """
        if not self._cp or self._cp_depth:
            result = yield from body
            return result
        count = self._cp_counts.get(label, 0)
        self._cp_counts[label] = count + 1
        key = f"{label}#{count}"
        self._cp_depth += 1
        self._cp_key = key
        yield ("note", f"{NOTE_CP_ENTER} {key}")
        try:
            result = yield from body
        finally:
            self._cp_depth -= 1
            self._cp_key = None
        yield ("note", f"{NOTE_CP_EXIT} {key}")
        return result

    def _cp_hop(self, kind: str, peer: object) -> tuple:
        """A hop note op: ``kind`` is 'snd'/'rcv', ``peer`` a rank or '*'."""
        return ("note", f"{NOTE_CP_HOP} {self._cp_key} {kind} {peer}")

    def _check_engine_idle(
        self, what: str,
        algorithm: "CollectiveAlgorithm | None" = None,
    ) -> None:
        # Blocking data-path ops would race the engine for the TIE TX
        # port and the receive-stream fronts; refuse loudly instead of
        # corrupting a stream.  (Barriers ride the request-token segment
        # and stay safe alongside outstanding requests.)  The message
        # names the collective algorithm in use so mixed-algorithm apps
        # can tell which call site raced (hw vs tree vs ring).
        if not self.engine.idle:
            labels = ", ".join(self.engine.active_labels)
            op = what if algorithm is None else f"{what}[{algorithm.value}]"
            raise ProgramError(
                f"rank {self.ctx.rank}: blocking {op} with "
                f"{self.engine.n_active} non-blocking request(s) "
                f"outstanding ({labels}); wait/waitall them first"
            )

    # -- point-to-point ---------------------------------------------------------

    def send(self, dst_rank: int, words: list[int]) -> "Program":
        """MPI_send: stream ``words`` to ``dst_rank`` (blocking-local)."""
        self._check_engine_idle("send")
        yield self.ctx.send_words(dst_rank, words)

    def recv(self, src_rank: int, n_words: int) -> "Program":
        """MPI_receive: wait for ``n_words`` from ``src_rank``."""
        self._check_engine_idle("recv")
        words = yield self.ctx.recv_words(src_rank, n_words)
        return words

    def send_doubles(self, dst_rank: int, values: list[float]) -> "Program":
        self._check_engine_idle("send")
        yield from self.ctx.send_doubles(dst_rank, values)
        # Inside a blocking collective (and only there — user point-to-
        # point cannot run mid-collective) a completed send is a hop of
        # the current op's dependency graph.
        if self._cp_key is not None:
            yield self._cp_hop("snd", dst_rank)

    def recv_doubles(self, src_rank: int, n_values: int) -> "Program":
        self._check_engine_idle("recv")
        values = yield from self.ctx.recv_doubles(src_rank, n_values)
        if self._cp_key is not None:
            yield self._cp_hop("rcv", src_rank)
        return values

    # -- token plumbing -------------------------------------------------------------

    def _send_token(self, dst_rank: int, opcode: _Token, epoch: int, aux: int = 0
                    ) -> "Program":
        yield ("sendreq", self.ctx.node_of(dst_rank), _encode(opcode, epoch, aux))

    def _recv_token(
        self, opcode: _Token, epoch: int, src_node: int | None = None,
        aux: int | None = None,
    ) -> "Program":
        """Wait for a matching token, stashing any strangers that arrive."""
        stash = self._stash
        while True:
            for index, (t_src, t_op, t_epoch, t_aux) in enumerate(stash):
                if (
                    t_op == int(opcode)
                    and t_epoch == (epoch & 0xFF)
                    and (src_node is None or t_src == src_node)
                    and (aux is None or t_aux == aux)
                ):
                    del stash[index]
                    return t_src, t_aux
            src, word = yield ("recvreq",)
            got_op, got_epoch, got_aux = _decode(word)
            stash.append((src, got_op, got_epoch, got_aux))

    # -- MPI_barrier -------------------------------------------------------------------

    def barrier(self) -> "Program":
        """MPI_barrier over all workers, using the configured algorithm."""
        self.barriers += 1
        if self.barrier_algorithm is BarrierAlgorithm.CENTRAL:
            yield from self._barrier_central()
        else:
            yield from self._barrier_dissemination()

    def _barrier_central(self) -> "Program":
        ctx = self.ctx
        epoch = self._epoch
        self._epoch = (epoch + 1) & 0xFF
        n = ctx.n_workers
        if n == 1:
            return
        if ctx.rank == 0:
            for __ in range(n - 1):
                yield from self._recv_token(_Token.ARRIVE, epoch)
            for rank in range(1, n):
                yield from self._send_token(rank, _Token.RELEASE, epoch)
        else:
            yield from self._send_token(0, _Token.ARRIVE, epoch)
            yield from self._recv_token(
                _Token.RELEASE, epoch, src_node=ctx.node_of(0)
            )

    def _barrier_dissemination(self) -> "Program":
        ctx = self.ctx
        epoch = self._dissem_epoch
        self._dissem_epoch = (epoch + 1) & 0xFF
        n = ctx.n_workers
        if n == 1:
            return
        distance = 1
        round_index = 0
        while distance < n:
            to_rank = (ctx.rank + distance) % n
            from_rank = (ctx.rank - distance) % n
            yield from self._send_token(
                to_rank, _Token.DISSEM, epoch, aux=round_index
            )
            yield from self._recv_token(
                _Token.DISSEM, epoch,
                src_node=ctx.node_of(from_rank), aux=round_index,
            )
            distance <<= 1
            round_index += 1

    # -- vector collectives ----------------------------------------------------------------

    def _combine_cost(self, n_values: int, op: ReduceOp) -> int:
        return combine_cost(self.ctx.cost, n_values, op)

    # -- hardware-collective helpers (the DMA/multicast engine) -----------------

    def _require_hw(self, what: str) -> None:
        if self.ctx.dma_queue_depth < 1:
            raise ProgramError(
                f"rank {self.ctx.rank}: the 'hw' collective algorithm "
                f"({what}) needs the DMA/TX-queue engine; set "
                f"dma_tx_queue_depth >= 1 on the SystemConfig"
            )

    def _hw_group_mask(self, root: int) -> int:
        """Destination bitmask of every worker node except the root's."""
        ctx = self.ctx
        mask = 0
        for rank in range(ctx.n_workers):
            if rank != root:
                mask |= 1 << ctx.node_of(rank)
        return mask

    def bcast_doubles(
        self,
        root: int,
        values: list[float] | None,
        n_values: int,
        algorithm: CollectiveAlgorithm | str = CollectiveAlgorithm.LINEAR,
    ) -> "Program":
        """MPI_bcast: every rank returns the root's ``n_values`` doubles.

        ``linear`` has the root stream to each rank in ascending order;
        ``tree`` runs the binomial broadcast (each holder forwards down
        its subtree, largest subtree first), ceil(log2 P) token rounds on
        the critical path; ``hw`` posts ONE multicast descriptor on the
        DMA engine and lets the fabric replicate — the root takes a
        single injection whatever P is.
        """
        algorithm = CollectiveAlgorithm.parse(algorithm)
        result = yield from self._cp_span(
            f"bcast[{algorithm.value}]",
            self._bcast_impl(root, values, n_values, algorithm),
        )
        return result

    def _bcast_impl(
        self,
        root: int,
        values: list[float] | None,
        n_values: int,
        algorithm: CollectiveAlgorithm,
    ) -> "Program":
        ctx = self.ctx
        n = ctx.n_workers
        if ctx.rank == root:
            if values is None or len(values) != n_values:
                raise ProgramError("broadcast root must supply the payload")
        if n == 1:
            return list(values)  # type: ignore[arg-type]
        self._check_engine_idle("bcast", algorithm)
        algorithm = algorithm.rooted()
        if algorithm is CollectiveAlgorithm.HW:
            self._require_hw("bcast")
            result = yield from self._bcast_hw(root, values, n_values)
            return result
        if algorithm is CollectiveAlgorithm.LINEAR:
            if ctx.rank == root:
                for rank in range(n):
                    if rank != root:
                        yield from self.send_doubles(rank, values)
                return list(values)
            received = yield from self.recv_doubles(root, n_values)
            return received
        # Binomial tree over relative ranks (root -> relative 0).
        relative = (ctx.rank - root) % n
        if relative == 0:
            data = list(values)  # type: ignore[arg-type]
            mask = 1
            while mask < n:
                mask <<= 1
        else:
            mask = 1
            while not relative & mask:
                mask <<= 1
            # mask is the lowest set bit: the parent cleared it.
            parent = ((relative - mask) + root) % n
            data = yield from self.recv_doubles(parent, n_values)
        # Forward down the subtree, largest half first; every mask below
        # the receive bit is clear in ``relative``, so relative + mask is
        # always a descendant.
        mask >>= 1
        while mask:
            child = relative + mask
            if child < n:
                yield from self.send_doubles((child + root) % n, data)
            mask >>= 1
        return data

    def _bcast_hw(
        self, root: int, values: list[float] | None, n_values: int
    ) -> "Program":
        """Hardware broadcast: one multicast descriptor, fabric replication.

        The root posts the packed payload with the all-other-workers
        bitmask (retrying while the queue is full) and is done — the DMA
        engine streams and the switches replicate.  Every other rank
        blocks on its *multicast* receive stream from the root; delivered
        bits are the root's payload verbatim, exactly as in the software
        broadcasts.
        """
        ctx = self.ctx
        if ctx.rank == root:
            words = pack_doubles(values)  # type: ignore[arg-type]
            group = self._hw_group_mask(root)
            guard = self.engine.guard("bcast[hw] multicast post")
            while not (yield ("qmcast", group, words)):
                # queue full: each retry is a 2-cycle descriptor write
                if guard is not None:
                    guard.tick()
            if self._cp_key is not None:
                yield self._cp_hop("snd", "*")
            return list(values)  # type: ignore[arg-type]
        words = yield ("mrecv", ctx.node_of(root), 2 * n_values)
        if self._cp_key is not None:
            yield self._cp_hop("rcv", root)
        return unpack_doubles(words)

    def reduce_doubles(
        self,
        root: int,
        values: list[float],
        op: ReduceOp | str = ReduceOp.SUM,
        algorithm: CollectiveAlgorithm | str = CollectiveAlgorithm.LINEAR,
    ) -> "Program":
        """MPI_reduce: elementwise ``op`` of every rank's vector, at root.

        Returns the combined vector at ``root`` and ``None`` elsewhere.
        The combine order is exactly the one
        :func:`~repro.empi.collectives.reference_reduce` replicates, so
        results validate bit for bit.  ``hw`` always combines in the
        binomial-tree order (identical bits to ``tree``); with the
        engine's reduction assist on, each round's combine happens at
        the engine as the child's flits arrive (children stream their
        accumulators as single-member multicast descriptors, parents
        post ``qreduce`` accumulate-on-receive descriptors) instead of
        serializing through recv copies and processor FP ops.  ``ring``
        is an allreduce schedule; a rooted reduce under it runs the tree.
        """
        op = ReduceOp.parse(op)
        requested = CollectiveAlgorithm.parse(algorithm)
        result = yield from self._cp_span(
            f"reduce[{requested.value}]",
            self._reduce_impl(root, values, op, requested),
        )
        return result

    def _reduce_impl(
        self,
        root: int,
        values: list[float],
        op: ReduceOp,
        requested: CollectiveAlgorithm,
    ) -> "Program":
        ctx = self.ctx
        n = ctx.n_workers
        n_values = len(values)
        if n == 1:
            return list(values)
        self._check_engine_idle("reduce", requested)
        if requested is CollectiveAlgorithm.HW:
            self._require_hw("reduce")
            if ctx.dma_reduce_assist:
                result = yield from self._reduce_hw_assist(root, values, op)
                return result
        algorithm = requested.rooted().combine_order()
        if algorithm is CollectiveAlgorithm.LINEAR:
            if ctx.rank != root:
                yield from self.send_doubles(root, values)
                return None
            acc: list[float] | None = None
            for rank in range(n):
                if rank == root:
                    contrib = list(values)
                else:
                    contrib = yield from self.recv_doubles(rank, n_values)
                if acc is None:
                    acc = contrib
                else:
                    acc = combine_values(acc, contrib, op)
                    yield ("compute", self._combine_cost(n_values, op))
            return acc
        # Binomial tree: at mask m every subtree root absorbs peer rr|m.
        relative = (ctx.rank - root) % n
        acc = list(values)
        mask = 1
        while mask < n:
            if relative & mask:
                parent = ((relative - mask) + root) % n
                yield from self.send_doubles(parent, acc)
                return None
            peer = relative | mask
            if peer != relative and peer < n:
                other = yield from self.recv_doubles((peer + root) % n, n_values)
                acc = combine_values(acc, other, op)
                yield ("compute", self._combine_cost(n_values, op))
            mask <<= 1
        return acc

    def _reduce_hw_assist(
        self, root: int, values: list[float], op: ReduceOp
    ) -> "Program":
        """Binomial-tree reduce with engine-side combining.

        Same tree, same combine order as the software ``tree`` reduce —
        hence bit-identical results — but each parent's combine is an
        accumulate-on-receive descriptor the engine retires as the
        child's multicast stream arrives, and each child's upward send
        is a queued single-member multicast descriptor, so neither leg
        serializes through processor ops.
        """
        ctx = self.ctx
        n = ctx.n_workers
        relative = (ctx.rank - root) % n
        acc = list(values)
        mask = 1
        while mask < n:
            if relative & mask:
                parent = ((relative - mask) + root) % n
                words = pack_doubles(acc)
                guard = self.engine.guard("reduce[hw] upward send post")
                while not (yield ("qmcast", 1 << ctx.node_of(parent), words)):
                    # queue full / regrouping: 2-cycle retry
                    if guard is not None:
                        guard.tick()
                if self._cp_key is not None:
                    yield self._cp_hop("snd", parent)
                return None
            peer = relative | mask
            if peer != relative and peer < n:
                peer_rank = (peer + root) % n
                peer_node = ctx.node_of(peer_rank)
                guard = self.engine.guard("reduce[hw] qreduce post")
                while not (yield ("qreduce", peer_node, acc, op.value)):
                    # previous descriptor still combining
                    if guard is not None:
                        guard.tick()
                guard = self.engine.guard("reduce[hw] engine combine")
                while True:
                    combined = yield ("qrpoll",)
                    if combined is not None:
                        break
                    if guard is not None:
                        guard.tick()
                acc = combined
                if self._cp_key is not None:
                    yield self._cp_hop("rcv", peer_rank)
            mask <<= 1
        return acc

    def allreduce_doubles(
        self,
        values: list[float],
        op: ReduceOp | str = ReduceOp.SUM,
        algorithm: CollectiveAlgorithm | str = CollectiveAlgorithm.LINEAR,
    ) -> "Program":
        """MPI_allreduce: reduce at rank 0, then broadcast the result.

        Under ``hw`` the reduce leg runs the binomial tree (bit-identical
        to ``tree``, engine-combined when the reduction assist is on) and
        the broadcast leg is one multicast descriptor.  Under ``ring``
        the whole operation is a reduce-scatter + allgather around the
        rank ring — the long-vector schedule, with its own combine order
        fixed by :func:`~repro.empi.collectives.reference_allreduce`.
        Under ``hier`` it is the chiplet-aware composition: ring within
        each chiplet's rank group, binomial tree across the group
        leaders, broadcast back down (see :meth:`_allreduce_hier`).
        """
        algorithm = CollectiveAlgorithm.parse(algorithm)
        result = yield from self._cp_span(
            f"allreduce[{algorithm.value}]",
            self._allreduce_impl(values, op, algorithm),
        )
        return result

    def _allreduce_impl(
        self,
        values: list[float],
        op: ReduceOp | str,
        algorithm: CollectiveAlgorithm,
    ) -> "Program":
        if algorithm is CollectiveAlgorithm.RING:
            result = yield from self._allreduce_ring(values, ReduceOp.parse(op))
            return result
        if algorithm is CollectiveAlgorithm.HIER:
            result = yield from self._allreduce_hier(
                values, ReduceOp.parse(op), frag=False
            )
            return result
        if self.ctx.n_workers > 1:
            self._check_engine_idle("allreduce", algorithm)
        n_values = len(values)
        reduced = yield from self.reduce_doubles(0, values, op, algorithm)
        result = yield from self.bcast_doubles(0, reduced, n_values, algorithm)
        return result

    def _allreduce_ring(self, values: list[float], op: ReduceOp) -> "Program":
        """Ring allreduce: reduce-scatter, then allgather.

        The vector is split by :func:`~repro.empi.collectives.ring_segments`
        into one segment per rank; for P-1 steps each rank streams one
        segment to its right neighbour and combines the arriving chain
        into the matching local segment (accumulator first), leaving rank
        r with the fully combined segment (r+1) mod P, which P-1 further
        steps circulate to everyone.  Each rank moves 2(P-1)/P of the
        vector instead of the tree's log2(P) whole-vector hops — the
        long-vector win.  With a DMA engine fitted (and the reduction
        assist on) the neighbour sends are single-member multicast
        descriptors and the combines are engine-side ``qreduce``
        descriptors; otherwise the TIE send/recv path carries the same
        schedule.  Both produce the reference ring bits exactly.
        """
        ctx = self.ctx
        n = ctx.n_workers
        if n == 1:
            return list(values)
        self._check_engine_idle("allreduce", CollectiveAlgorithm.RING)
        use_hw = ctx.dma_queue_depth >= 1 and ctx.dma_reduce_assist
        segments = ring_segments(len(values), n)
        acc = list(values)
        rank = ctx.rank
        nxt, prv = (rank + 1) % n, (rank - 1) % n
        nxt_node, prv_node = ctx.node_of(nxt), ctx.node_of(prv)
        for step in range(n - 1):  # reduce-scatter
            s0, s1 = segments[(rank - step) % n]
            r0, r1 = segments[(rank - step - 1) % n]
            n_recv = r1 - r0
            if use_hw:
                if n_recv:
                    guard = self.engine.guard("allreduce[ring] qreduce post")
                    while not (yield ("qreduce", prv_node, acc[r0:r1],
                                      op.value)):
                        if guard is not None:
                            guard.tick()
                if s1 > s0:
                    words = pack_doubles(acc[s0:s1])
                    guard = self.engine.guard("allreduce[ring] segment send")
                    while not (yield ("qmcast", 1 << nxt_node, words)):
                        if guard is not None:
                            guard.tick()
                    if self._cp_key is not None:
                        yield self._cp_hop("snd", nxt)
                if n_recv:
                    guard = self.engine.guard("allreduce[ring] combine")
                    while True:
                        combined = yield ("qrpoll",)
                        if combined is not None:
                            break
                        if guard is not None:
                            guard.tick()
                    acc[r0:r1] = combined
                    if self._cp_key is not None:
                        yield self._cp_hop("rcv", prv)
            else:
                if s1 > s0:
                    yield from self.send_doubles(nxt, acc[s0:s1])
                if n_recv:
                    other = yield from self.recv_doubles(prv, n_recv)
                    acc[r0:r1] = combine_values(acc[r0:r1], other, op)
                    yield ("compute", self._combine_cost(n_recv, op))
        for step in range(n - 1):  # allgather
            s0, s1 = segments[(rank + 1 - step) % n]
            r0, r1 = segments[(rank - step) % n]
            n_recv = r1 - r0
            if use_hw:
                if s1 > s0:
                    words = pack_doubles(acc[s0:s1])
                    guard = self.engine.guard("allreduce[ring] gather send")
                    while not (yield ("qmcast", 1 << nxt_node, words)):
                        if guard is not None:
                            guard.tick()
                    if self._cp_key is not None:
                        yield self._cp_hop("snd", nxt)
                if n_recv:
                    words = yield ("mrecv", prv_node, 2 * n_recv)
                    acc[r0:r1] = unpack_doubles(words)
                    if self._cp_key is not None:
                        yield self._cp_hop("rcv", prv)
            else:
                if s1 > s0:
                    yield from self.send_doubles(nxt, acc[s0:s1])
                if n_recv:
                    acc[r0:r1] = yield from self.recv_doubles(prv, n_recv)
        return acc

    # -- hierarchical (chiplet-aware) allreduce ---------------------------------
    #
    # One code path serves both the blocking and the non-blocking op: the
    # ``frag`` flag picks the point-to-point flavour (blocking TIE
    # send/recv vs rescheduling fragments), and everything else — group
    # shapes, schedules, combine orders — is identical, so the delivered
    # bits cannot differ between the two.

    def _hier_groups(self) -> list[list[int]]:
        """The chiplet rank groups, or one all-ranks group when flat."""
        groups = getattr(self.ctx, "rank_groups", None)
        if not groups:
            return [list(range(self.ctx.n_workers))]
        return groups

    def _hier_send(self, dst_rank: int, values: list[float],
                   frag: bool) -> "Program":
        if frag:
            yield from self._frag_send_doubles(dst_rank, values)
            if self._cp_key is not None:
                yield self._cp_hop("snd", dst_rank)
        else:
            yield from self.send_doubles(dst_rank, values)

    def _hier_recv(self, src_rank: int, n_values: int,
                   frag: bool) -> "Program":
        if frag:
            values = yield from self._frag_recv_doubles(src_rank, n_values)
            if self._cp_key is not None:
                yield self._cp_hop("rcv", src_rank)
            return values
        values = yield from self.recv_doubles(src_rank, n_values)
        return values

    def _ring_allreduce_over(self, ranks: list[int], values: list[float],
                             op: ReduceOp, frag: bool) -> "Program":
        """Ring allreduce over an ordered rank list (one chiplet group).

        Exactly the :meth:`_allreduce_ring` schedule with ring positions
        taken from ``ranks`` instead of raw rank numbers, so the bits
        match ``reference_allreduce(group contributions, op, ring)``.
        """
        k = len(ranks)
        acc = list(values)
        if k == 1:
            return acc
        idx = ranks.index(self.ctx.rank)
        nxt, prv = ranks[(idx + 1) % k], ranks[(idx - 1) % k]
        segments = ring_segments(len(values), k)
        for step in range(k - 1):  # reduce-scatter
            s0, s1 = segments[(idx - step) % k]
            r0, r1 = segments[(idx - step - 1) % k]
            if s1 > s0:
                yield from self._hier_send(nxt, acc[s0:s1], frag)
            n_recv = r1 - r0
            if n_recv:
                other = yield from self._hier_recv(prv, n_recv, frag)
                acc[r0:r1] = combine_values(acc[r0:r1], other, op)
                yield ("compute", self._combine_cost(n_recv, op))
        for step in range(k - 1):  # allgather
            s0, s1 = segments[(idx + 1 - step) % k]
            r0, r1 = segments[(idx - step) % k]
            if s1 > s0:
                yield from self._hier_send(nxt, acc[s0:s1], frag)
            n_recv = r1 - r0
            if n_recv:
                acc[r0:r1] = yield from self._hier_recv(prv, n_recv, frag)
        return acc

    def _tree_reduce_over(self, ranks: list[int], values: list[float],
                          op: ReduceOp, frag: bool) -> "Program":
        """Binomial-tree reduce over ``ranks`` with root ``ranks[0]``.

        Same recursion as the rooted tree reduce over relative list
        positions, so the result at the root matches
        ``reference_reduce(contributions in ranks order, 0, op, tree)``.
        Returns the accumulator at the root, None elsewhere.
        """
        k = len(ranks)
        acc = list(values)
        if k == 1:
            return acc
        rel = ranks.index(self.ctx.rank)
        n_values = len(values)
        mask = 1
        while mask < k:
            if rel & mask:
                yield from self._hier_send(ranks[rel - mask], acc, frag)
                return None
            peer = rel | mask
            if peer != rel and peer < k:
                other = yield from self._hier_recv(ranks[peer], n_values, frag)
                acc = combine_values(acc, other, op)
                yield ("compute", self._combine_cost(n_values, op))
            mask <<= 1
        return acc

    def _tree_bcast_over(self, ranks: list[int],
                         values: list[float] | None,
                         n_values: int, frag: bool) -> "Program":
        """Binomial-tree broadcast over ``ranks`` from root ``ranks[0]``.

        Only the root's ``values`` are read; the payload moves bit-for-
        bit, so broadcasts never enter a combine order.
        """
        k = len(ranks)
        if k == 1:
            return list(values)  # type: ignore[arg-type]
        rel = ranks.index(self.ctx.rank)
        if rel == 0:
            data = list(values)  # type: ignore[arg-type]
            mask = 1
            while mask < k:
                mask <<= 1
        else:
            mask = 1
            while not rel & mask:
                mask <<= 1
            data = yield from self._hier_recv(ranks[rel - mask], n_values, frag)
        mask >>= 1
        while mask:
            child = rel + mask
            if child < k:
                yield from self._hier_send(ranks[child], data, frag)
            mask >>= 1
        return data

    def _allreduce_hier(self, values: list[float], op: ReduceOp,
                        frag: bool) -> "Program":
        """Hierarchical allreduce: intra-chiplet ring, inter-chiplet tree.

        Three phases, each over rank lists from ``ctx.rank_groups``:

        1. ring allreduce within each chiplet group — every member ends
           with the group sum, moving 2(k-1)/k of the vector over cheap
           on-die links;
        2. binomial-tree reduce of the group sums across the group
           *leaders* (each group's first rank — the gateway tile, whose
           switch owns the uplink), then tree broadcast of the total
           back across the leaders: only log2(C) whole-vector transfers
           cross the inter-chiplet links;
        3. binomial-tree broadcast from each leader down its group.

        On a flat topology (``rank_groups`` None) there is one group:
        phase 1 is the plain ring and phases 2-3 vanish, so ``hier``
        delivers the ``ring`` bits.  The combine order is exactly
        :func:`~repro.empi.collectives.reference_allreduce` with
        ``groups``.
        """
        ctx = self.ctx
        if ctx.n_workers == 1:
            return list(values)
        if not frag:
            self._check_engine_idle("allreduce", CollectiveAlgorithm.HIER)
        groups = self._hier_groups()
        members = next(g for g in groups if ctx.rank in g)
        acc = yield from self._ring_allreduce_over(members, values, op, frag)
        leaders = [g[0] for g in groups]
        if len(leaders) > 1:
            if ctx.rank == members[0]:
                reduced = yield from self._tree_reduce_over(
                    leaders, acc, op, frag
                )
                acc = yield from self._tree_bcast_over(
                    leaders, reduced, len(values), frag
                )
            if len(members) > 1:
                acc = yield from self._tree_bcast_over(
                    members,
                    acc if ctx.rank == members[0] else None,
                    len(values),
                    frag,
                )
        return acc

    def scatter_doubles(
        self,
        root: int,
        chunks: list[list[float]] | None,
        n_values: int,
    ) -> "Program":
        """MPI_scatter: rank r returns the root's ``chunks[r]``.

        Root-centric by definition, so always linear (see
        :class:`~repro.empi.collectives.CollectiveAlgorithm`).
        """
        ctx = self.ctx
        n = ctx.n_workers
        if n > 1:
            self._check_engine_idle("scatter", CollectiveAlgorithm.LINEAR)
        if ctx.rank == root:
            if chunks is None or len(chunks) != n:
                raise ProgramError("scatter root must supply one chunk per rank")
            if any(len(chunk) != n_values for chunk in chunks):
                raise ProgramError(f"scatter chunks must hold {n_values} values")
            for rank in range(n):
                if rank != root:
                    yield from self.send_doubles(rank, chunks[rank])
            return list(chunks[root])
        received = yield from self.recv_doubles(root, n_values)
        return received

    def gather_doubles(self, root: int, values: list[float]) -> "Program":
        """MPI_gather: root returns every rank's vector, in rank order."""
        ctx = self.ctx
        n = ctx.n_workers
        if n > 1:
            self._check_engine_idle("gather", CollectiveAlgorithm.LINEAR)
        if ctx.rank != root:
            yield from self.send_doubles(root, values)
            return None
        gathered: list[list[float] | None] = [None] * n
        gathered[root] = list(values)
        for rank in range(n):
            if rank != root:
                gathered[rank] = yield from self.recv_doubles(rank, len(values))
        return gathered

    # -- non-blocking operations (request/progress engine) ---------------------------------
    #
    # Each non-blocking op posts a *communication fragment* on the
    # engine: the same wire protocol and the same combine orders as the
    # blocking ops above (results are bit-identical either way), but
    # built from TX descriptors and status polls so the core keeps
    # running while the TIE streams.  Progress happens inside wait/test
    # and inside overlap() — the cooperative analogue of MPI progress.

    def isend(self, dst_rank: int, values: list[float]) -> "Program":
        """MPI_Isend: post a send of doubles; complete via ``wait``."""
        request = yield from self.engine.post(
            self._frag_send_doubles(dst_rank, values), f"isend->{dst_rank}"
        )
        return request

    def irecv(self, src_rank: int, n_values: int) -> "Program":
        """MPI_Irecv: post a receive of doubles; ``wait`` returns them."""
        request = yield from self.engine.post(
            self._frag_recv_doubles(src_rank, n_values), f"irecv<-{src_rank}"
        )
        return request

    def ibcast_doubles(
        self,
        root: int,
        values: list[float] | None,
        n_values: int,
        algorithm: CollectiveAlgorithm | str = CollectiveAlgorithm.LINEAR,
    ) -> "Program":
        """MPI_Ibcast: same combine-free data movement as ``bcast_doubles``."""
        algorithm = CollectiveAlgorithm.parse(algorithm)
        request = yield from self.engine.post(
            self._frag_collective(
                self._frag_bcast_body(root, values, n_values, algorithm),
                f"ibcast[{algorithm.value}]",
            ),
            f"ibcast[{algorithm.value}]",
        )
        return request

    def ireduce_doubles(
        self,
        root: int,
        values: list[float],
        op: ReduceOp | str = ReduceOp.SUM,
        algorithm: CollectiveAlgorithm | str = CollectiveAlgorithm.LINEAR,
    ) -> "Program":
        """MPI_Ireduce: same combine order as ``reduce_doubles``."""
        op = ReduceOp.parse(op)
        algorithm = CollectiveAlgorithm.parse(algorithm)
        request = yield from self.engine.post(
            self._frag_collective(
                self._frag_reduce_body(root, values, op, algorithm),
                f"ireduce[{algorithm.value}]",
            ),
            f"ireduce[{algorithm.value}]",
        )
        return request

    def iallreduce_doubles(
        self,
        values: list[float],
        op: ReduceOp | str = ReduceOp.SUM,
        algorithm: CollectiveAlgorithm | str = CollectiveAlgorithm.LINEAR,
    ) -> "Program":
        """MPI_Iallreduce: reduce at rank 0 then broadcast, like the
        blocking ``allreduce_doubles`` (bit-identical result)."""
        op = ReduceOp.parse(op)
        algorithm = CollectiveAlgorithm.parse(algorithm)
        request = yield from self.engine.post(
            self._frag_collective(
                self._frag_allreduce_body(values, op, algorithm),
                f"iallreduce[{algorithm.value}]",
            ),
            f"iallreduce[{algorithm.value}]",
        )
        return request

    def wait(self, request: Request) -> "Program":
        """MPI_Wait: progress until ``request`` completes; its result."""
        result = yield from self.engine.wait(request)
        return result

    def waitall(self, requests: list[Request]) -> "Program":
        """MPI_Waitall: results in request order."""
        results = yield from self.engine.waitall(requests)
        return results

    def waitany(self, requests: list[Request]) -> "Program":
        """MPI_Waitany: (index, result) of the first completed request."""
        index, result = yield from self.engine.waitany(requests)
        return index, result

    def waitsome(self, requests: list[Request]) -> "Program":
        """MPI_Waitsome: [(index, result), ...] of the completed ones."""
        completed = yield from self.engine.waitsome(requests)
        return completed

    def test(self, request: Request) -> "Program":
        """MPI_Test: one progress round; True when complete."""
        done = yield from self.engine.test(request)
        return done

    def progress(self) -> "Program":
        """One explicit progress round over all outstanding requests."""
        yield from self.engine.progress()

    def overlap(self, frag: "Program", poll_interval: int = 2) -> "Program":
        """Run a compute fragment while progressing outstanding requests."""
        result = yield from self.engine.overlap(frag, poll_interval)
        return result

    # -- communication fragments -----------------------------------------------------------

    def _frag_send_words(self, dst_node: int, words: list[int]) -> "Program":
        """Stream ``words`` to ``dst_node`` via a TX descriptor.

        Takes the TX turn (one message in flight at a time, hardware
        constraint), confirms the port idle, posts the descriptor and
        polls the status register until the TIE drained it — MPI's
        "send complete = buffer reusable" point.
        """
        turn = self.engine.turn("tx")
        token = object()
        turn.enter(token)
        while not turn.holds(token):
            yield RESCHEDULE
        while not (yield ("txdone",)):
            yield RESCHEDULE
        yield ("isend", dst_node, words)
        while not (yield ("txdone",)):
            yield RESCHEDULE
        turn.leave(token)

    def _frag_recv_words(self, src_node: int, n_words: int) -> "Program":
        """Take the next ``n_words`` of the stream from ``src_node``.

        Holds the per-source turn so concurrently posted receives from
        one peer complete in posting order (the stream is a single
        in-order front; skipping would hand request B request A's data).
        """
        turn = self.engine.turn(("rx", src_node))
        token = object()
        turn.enter(token)
        while not turn.holds(token):
            yield RESCHEDULE
        while True:
            words = yield ("trecv", src_node, n_words)
            if words is not None:
                break
            yield RESCHEDULE
        turn.leave(token)
        return words

    def _frag_send_doubles(self, dst_rank: int, values: list[float]) -> "Program":
        yield from self._frag_send_words(
            self.ctx.node_of(dst_rank), pack_doubles(values)
        )

    def _frag_recv_doubles(self, src_rank: int, n_values: int) -> "Program":
        words = yield from self._frag_recv_words(
            self.ctx.node_of(src_rank), 2 * n_values
        )
        return unpack_doubles(words)

    def _frag_collective(self, body: "Program", label: str) -> "Program":
        """Serialize non-blocking collectives through the collective turn.

        All ranks must post their non-blocking collectives in the same
        order (the MPI-3 rule); the turn makes a later collective queue
        behind an unfinished earlier one instead of interleaving its
        messages into the same streams.  The turn also makes the
        critical-path span unambiguous: at most one collective body
        executes at a time, so ``_cp_key`` names exactly this op while
        interleaved point-to-point fragments (which never emit hops)
        progress underneath it.
        """
        turn = self.engine.turn("collective")
        token = object()
        turn.enter(token)
        while not turn.holds(token):
            yield RESCHEDULE
        result = yield from self._cp_span(label, body)
        turn.leave(token)
        return result

    def _frag_bcast_body(
        self,
        root: int,
        values: list[float] | None,
        n_values: int,
        algorithm: CollectiveAlgorithm,
    ) -> "Program":
        # Mirrors bcast_doubles exactly (same sends, same order) with
        # fragment point-to-point, so the delivered bits cannot differ.
        ctx = self.ctx
        n = ctx.n_workers
        if ctx.rank == root:
            if values is None or len(values) != n_values:
                raise ProgramError("broadcast root must supply the payload")
        if n == 1:
            return list(values)  # type: ignore[arg-type]
        algorithm = algorithm.rooted()
        if algorithm is CollectiveAlgorithm.HW:
            self._require_hw("ibcast")
            result = yield from self._frag_bcast_hw(root, values, n_values)
            return result
        if algorithm is CollectiveAlgorithm.LINEAR:
            if ctx.rank == root:
                for rank in range(n):
                    if rank != root:
                        yield from self._frag_send_doubles(rank, values)
                        if self._cp_key is not None:
                            yield self._cp_hop("snd", rank)
                return list(values)
            received = yield from self._frag_recv_doubles(root, n_values)
            if self._cp_key is not None:
                yield self._cp_hop("rcv", root)
            return received
        relative = (ctx.rank - root) % n
        if relative == 0:
            data = list(values)  # type: ignore[arg-type]
            mask = 1
            while mask < n:
                mask <<= 1
        else:
            mask = 1
            while not relative & mask:
                mask <<= 1
            parent = ((relative - mask) + root) % n
            data = yield from self._frag_recv_doubles(parent, n_values)
            if self._cp_key is not None:
                yield self._cp_hop("rcv", parent)
        mask >>= 1
        while mask:
            child = relative + mask
            if child < n:
                yield from self._frag_send_doubles((child + root) % n, data)
                if self._cp_key is not None:
                    yield self._cp_hop("snd", (child + root) % n)
            mask >>= 1
        return data

    def _frag_bcast_hw(
        self, root: int, values: list[float] | None, n_values: int
    ) -> "Program":
        # The non-blocking twin of _bcast_hw: the root's descriptor post
        # reschedules while the queue is full (the engine drains it in
        # hardware), receivers hold the per-source multicast-stream turn
        # so concurrently posted hw collectives complete in posting order.
        ctx = self.ctx
        if ctx.rank == root:
            words = pack_doubles(values)  # type: ignore[arg-type]
            group = self._hw_group_mask(root)
            while not (yield ("qmcast", group, words)):
                yield RESCHEDULE
            if self._cp_key is not None:
                yield self._cp_hop("snd", "*")
            return list(values)  # type: ignore[arg-type]
        src_node = ctx.node_of(root)
        turn = self.engine.turn(("mrx", src_node))
        token = object()
        turn.enter(token)
        while not turn.holds(token):
            yield RESCHEDULE
        while True:
            words = yield ("tmrecv", src_node, 2 * n_values)
            if words is not None:
                break
            yield RESCHEDULE
        turn.leave(token)
        if self._cp_key is not None:
            yield self._cp_hop("rcv", root)
        return unpack_doubles(words)

    def _frag_reduce_body(
        self,
        root: int,
        values: list[float],
        op: ReduceOp,
        algorithm: CollectiveAlgorithm,
    ) -> "Program":
        # Mirrors reduce_doubles exactly — identical combine orders, so
        # reference_reduce validates the non-blocking path too.
        ctx = self.ctx
        n = ctx.n_workers
        n_values = len(values)
        if n == 1:
            return list(values)
        algorithm = algorithm.rooted()
        if algorithm is CollectiveAlgorithm.HW:
            self._require_hw("ireduce")
            if ctx.dma_reduce_assist:
                result = yield from self._frag_reduce_hw_assist(
                    root, values, op
                )
                return result
        if algorithm is CollectiveAlgorithm.LINEAR:
            if ctx.rank != root:
                yield from self._frag_send_doubles(root, values)
                if self._cp_key is not None:
                    yield self._cp_hop("snd", root)
                return None
            acc: list[float] | None = None
            for rank in range(n):
                if rank == root:
                    contrib = list(values)
                else:
                    contrib = yield from self._frag_recv_doubles(rank, n_values)
                    if self._cp_key is not None:
                        yield self._cp_hop("rcv", rank)
                if acc is None:
                    acc = contrib
                else:
                    acc = combine_values(acc, contrib, op)
                    yield ("compute", self._combine_cost(n_values, op))
            return acc
        relative = (ctx.rank - root) % n
        acc = list(values)
        mask = 1
        while mask < n:
            if relative & mask:
                parent = ((relative - mask) + root) % n
                yield from self._frag_send_doubles(parent, acc)
                if self._cp_key is not None:
                    yield self._cp_hop("snd", parent)
                return None
            peer = relative | mask
            if peer != relative and peer < n:
                peer_rank = (peer + root) % n
                other = yield from self._frag_recv_doubles(peer_rank, n_values)
                acc = combine_values(acc, other, op)
                yield ("compute", self._combine_cost(n_values, op))
                if self._cp_key is not None:
                    yield self._cp_hop("rcv", peer_rank)
            mask <<= 1
        return acc

    def _frag_reduce_hw_assist(
        self, root: int, values: list[float], op: ReduceOp
    ) -> "Program":
        # The non-blocking twin of _reduce_hw_assist: same descriptors,
        # same combine order, rescheduling between status polls so
        # overlapped compute runs while the engines stream and combine.
        ctx = self.ctx
        n = ctx.n_workers
        relative = (ctx.rank - root) % n
        acc = list(values)
        mask = 1
        while mask < n:
            if relative & mask:
                parent = ((relative - mask) + root) % n
                words = pack_doubles(acc)
                while not (yield ("qmcast", 1 << ctx.node_of(parent), words)):
                    yield RESCHEDULE
                if self._cp_key is not None:
                    yield self._cp_hop("snd", parent)
                return None
            peer = relative | mask
            if peer != relative and peer < n:
                peer_rank = (peer + root) % n
                peer_node = ctx.node_of(peer_rank)
                while not (yield ("qreduce", peer_node, acc, op.value)):
                    yield RESCHEDULE
                while True:
                    combined = yield ("qrpoll",)
                    if combined is not None:
                        break
                    yield RESCHEDULE
                acc = combined
                if self._cp_key is not None:
                    yield self._cp_hop("rcv", peer_rank)
            mask <<= 1
        return acc

    def _frag_allreduce_body(
        self, values: list[float], op: ReduceOp, algorithm: CollectiveAlgorithm
    ) -> "Program":
        if algorithm is CollectiveAlgorithm.RING:
            result = yield from self._frag_allreduce_ring(values, op)
            return result
        if algorithm is CollectiveAlgorithm.HIER:
            result = yield from self._allreduce_hier(values, op, frag=True)
            return result
        n_values = len(values)
        reduced = yield from self._frag_reduce_body(0, values, op, algorithm)
        result = yield from self._frag_bcast_body(0, reduced, n_values, algorithm)
        return result

    def _frag_allreduce_ring(
        self, values: list[float], op: ReduceOp
    ) -> "Program":
        # Mirrors _allreduce_ring step for step (same segments, same
        # combine order, so delivered bits are equal) with fragment
        # point-to-point on the software path and rescheduling polls on
        # the engine path.
        ctx = self.ctx
        n = ctx.n_workers
        if n == 1:
            return list(values)
        use_hw = ctx.dma_queue_depth >= 1 and ctx.dma_reduce_assist
        segments = ring_segments(len(values), n)
        acc = list(values)
        rank = ctx.rank
        nxt, prv = (rank + 1) % n, (rank - 1) % n
        nxt_node, prv_node = ctx.node_of(nxt), ctx.node_of(prv)
        for step in range(n - 1):  # reduce-scatter
            s0, s1 = segments[(rank - step) % n]
            r0, r1 = segments[(rank - step - 1) % n]
            n_recv = r1 - r0
            if use_hw:
                if n_recv:
                    while not (yield ("qreduce", prv_node, acc[r0:r1],
                                      op.value)):
                        yield RESCHEDULE
                if s1 > s0:
                    words = pack_doubles(acc[s0:s1])
                    while not (yield ("qmcast", 1 << nxt_node, words)):
                        yield RESCHEDULE
                    if self._cp_key is not None:
                        yield self._cp_hop("snd", nxt)
                if n_recv:
                    while True:
                        combined = yield ("qrpoll",)
                        if combined is not None:
                            break
                        yield RESCHEDULE
                    acc[r0:r1] = combined
                    if self._cp_key is not None:
                        yield self._cp_hop("rcv", prv)
            else:
                if s1 > s0:
                    yield from self._frag_send_doubles(nxt, acc[s0:s1])
                    if self._cp_key is not None:
                        yield self._cp_hop("snd", nxt)
                if n_recv:
                    other = yield from self._frag_recv_doubles(prv, n_recv)
                    acc[r0:r1] = combine_values(acc[r0:r1], other, op)
                    yield ("compute", self._combine_cost(n_recv, op))
                    if self._cp_key is not None:
                        yield self._cp_hop("rcv", prv)
        for step in range(n - 1):  # allgather
            s0, s1 = segments[(rank + 1 - step) % n]
            r0, r1 = segments[(rank - step) % n]
            n_recv = r1 - r0
            if use_hw:
                if s1 > s0:
                    words = pack_doubles(acc[s0:s1])
                    while not (yield ("qmcast", 1 << nxt_node, words)):
                        yield RESCHEDULE
                    if self._cp_key is not None:
                        yield self._cp_hop("snd", nxt)
                if n_recv:
                    while True:
                        words = yield ("tmrecv", prv_node, 2 * n_recv)
                        if words is not None:
                            break
                        yield RESCHEDULE
                    acc[r0:r1] = unpack_doubles(words)
                    if self._cp_key is not None:
                        yield self._cp_hop("rcv", prv)
            else:
                if s1 > s0:
                    yield from self._frag_send_doubles(nxt, acc[s0:s1])
                    if self._cp_key is not None:
                        yield self._cp_hop("snd", nxt)
                if n_recv:
                    acc[r0:r1] = yield from self._frag_recv_doubles(prv, n_recv)
                    if self._cp_key is not None:
                        yield self._cp_hop("rcv", prv)
        return acc

    # -- legacy scalar collectives ---------------------------------------------------------

    def broadcast_doubles(self, root: int, values: list[float] | None,
                          n_values: int) -> "Program":
        """Root streams ``values`` to every other rank; returns the payload."""
        ctx = self.ctx
        if ctx.rank == root:
            if values is None or len(values) != n_values:
                raise ProgramError("broadcast root must supply the payload")
            for rank in range(ctx.n_workers):
                if rank != root:
                    yield from self.send_doubles(rank, values)
            return list(values)
        received = yield from self.recv_doubles(root, n_values)
        return received

    def gather_double(self, root: int, value: float) -> "Program":
        """Each rank contributes one double; root returns the full list."""
        ctx = self.ctx
        if ctx.rank == root:
            gathered: list[float | None] = [None] * ctx.n_workers
            gathered[root] = value
            for rank in range(ctx.n_workers):
                if rank != root:
                    values = yield from self.recv_doubles(rank, 1)
                    gathered[rank] = values[0]
            return gathered
        yield from self.send_doubles(root, [value])
        return None

    def allreduce_sum(self, value: float) -> "Program":
        """Sum one double across all workers (gather + broadcast on rank 0)."""
        ctx = self.ctx
        gathered = yield from self.gather_double(0, value)
        if ctx.rank == 0:
            total = 0.0
            for item in gathered:
                total += item
            result = yield from self.broadcast_doubles(0, [total], 1)
        else:
            result = yield from self.broadcast_doubles(0, None, 1)
        return result[0]
