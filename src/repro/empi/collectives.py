"""Collective communication: algorithms, references, and the backend facade.

The paper's evaluation stops at barriers; its future-work section asks for
"standard parallel benchmarks", and those live or die on collectives.
This module gives MEDEA programs MPI-style collectives — broadcast,
reduce, allreduce, scatter and gather — each runnable over **both**
programming models:

* the hybrid message-passing path (:class:`EmpiCollectives`, delegating
  to the vector collectives on :class:`~repro.empi.runtime.Empi`): data
  rides the TIE streams, synchronization rides single-flit request
  tokens, and the MPMMU is never touched;
* the pure shared-memory path
  (:class:`~repro.empi.smsync.SharedMemoryCollectives`): every word is an
  uncached MPMMU round trip and every phase is a shared-memory barrier —
  the serialization cost the hybrid architecture exists to remove.

Floating-point reduction is not associative, so each (algorithm, op)
pair fixes one combine order and the pure-python reference functions here
replicate it *exactly*.  Apps validate bit for bit against these
references, never against a reordered numpy shortcut.
"""

from __future__ import annotations

import enum
import typing

from repro.empi.requests import NOTE_PHASE_ENTER, NOTE_PHASE_EXIT
from repro.errors import ConfigError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pe.program import Program, ProgramContext


class CollectiveAlgorithm(enum.Enum):
    """How a rooted collective moves data between ranks.

    * ``linear`` — the root exchanges with every other rank directly:
      O(P) messages all touching the root, one hop of software latency;
    * ``tree`` — a binomial tree: O(P) messages but only ceil(log2 P)
      rounds on the critical path, the classic large-P win;
    * ``hw`` — the hardware collective engine (:mod:`repro.dma`): the
      data-distribution half of a collective becomes ONE multicast
      descriptor the fabric replicates, and the combining half runs the
      binomial tree — in the tree order, so ``hw`` results are
      bit-identical to ``tree``.  With the engine's reduction assist on
      (``dma_reduce_assist``, the default) each tree round's combine
      happens *at the engine on flit arrival* (a ``qreduce``
      accumulate-on-receive descriptor) instead of serializing through
      processor ops.  Requires ``dma_tx_queue_depth >= 1`` and the
      ``empi`` model.
    * ``ring`` — reduce-scatter + allgather over a rank ring, the
      long-vector allreduce schedule: every rank moves 2(P-1)/P of the
      vector instead of the tree's log2(P) whole-vector hops.  Applies
      to ``allreduce`` (its own combine order, fixed by
      :func:`reference_allreduce`); rooted collectives under ``ring``
      run the binomial tree.  Rides the DMA engine (neighbor multicast
      descriptors + ``qreduce``) when one is fitted, the TIE
      send/recv path otherwise, and the slot arena on ``pure_sm`` —
      all three deliver bit-identical vectors.
    * ``hier`` — the topology-aware hierarchical allreduce for chiplet
      systems: a ring allreduce *within* each chiplet's rank group
      (cheap on-die neighbour links), then a binomial tree across the
      chiplet *leaders* (the gateway-adjacent first rank of each group,
      so only log2(C) whole-vector transfers cross the expensive
      inter-chiplet links), then a binomial broadcast back down each
      group.  Its combine order is fixed by :func:`reference_allreduce`
      with ``groups``; on a flat topology (no rank groups) there is one
      group and ``hier`` delivers the ``ring`` bits exactly.  Rooted
      collectives under ``hier`` run the binomial tree.  Requires the
      ``empi`` model — on ``pure_sm`` every word serializes through the
      MPMMU whatever the schedule, so hierarchy has nothing to exploit.

    Scatter and gather are root-centric by definition (every payload
    word starts or ends at the root), so they always run linear.
    """

    LINEAR = "linear"
    TREE = "tree"
    HW = "hw"
    RING = "ring"
    HIER = "hier"

    @classmethod
    def parse(cls, value: "CollectiveAlgorithm | str") -> "CollectiveAlgorithm":
        if isinstance(value, CollectiveAlgorithm):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise ConfigError(
                f"unknown collective algorithm {value!r}; "
                f"use 'linear', 'tree', 'hw', 'ring' or 'hier'"
            ) from None

    def combine_order(self) -> "CollectiveAlgorithm":
        """The combine order a reduction under this algorithm follows.

        ``hw`` offloads data distribution and (with the assist) the
        combine *timing*, never the combine *order*: it reduces in the
        binomial-tree order, so the ``tree`` references validate it.
        ``ring`` and ``hier`` keep their own orders for allreduce; a
        *rooted* reduce under either runs the tree, which is what this
        resolves for.
        """
        if self is CollectiveAlgorithm.HW:
            return CollectiveAlgorithm.TREE
        return self

    def rooted(self) -> "CollectiveAlgorithm":
        """The algorithm a *rooted* collective (bcast/reduce) runs.

        Ring and hier are allreduce schedules — they have no root — so
        rooted collectives under them demote to the binomial tree;
        every other setting is itself.  All the machine paths (blocking,
        fragments, both backends) and the references resolve through
        this one place, so the demotion can never drift between them.
        """
        if self in (CollectiveAlgorithm.RING, CollectiveAlgorithm.HIER):
            return CollectiveAlgorithm.TREE
        return self


class ReduceOp(enum.Enum):
    SUM = "sum"
    MAX = "max"

    @classmethod
    def parse(cls, value: "ReduceOp | str") -> "ReduceOp":
        if isinstance(value, ReduceOp):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise ConfigError(
                f"unknown reduce op {value!r}; use 'sum' or 'max'"
            ) from None


class CommModel(enum.Enum):
    """Which programming model carries the collectives."""

    EMPI = "empi"
    PURE_SM = "pure_sm"

    @classmethod
    def parse(cls, value: "CommModel | str") -> "CommModel":
        if isinstance(value, CommModel):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise ConfigError(
                f"unknown comm model {value!r}; use 'empi' or 'pure_sm'"
            ) from None


def combine_cost(cost, n_values: int, op: ReduceOp) -> int:
    """Core cycles for one elementwise combine of ``n_values`` doubles.

    Shared by both backends so their timing can never drift apart —
    the hybrid-vs-SM comparison must charge identical FP work.
    """
    unit = cost.fp_add if op is ReduceOp.SUM else cost.fp_cmp
    return n_values * unit + cost.loop_overhead


def combine_scalar(acc: float, other: float, op: ReduceOp) -> float:
    """One element of a combine, accumulator first — the single
    definition every combiner (software loops *and* the DMA engine's
    accumulate-on-receive datapath) shares, so a reduction's bit pattern
    is fixed by its combine order alone."""
    if op is ReduceOp.SUM:
        return acc + other
    return acc if acc >= other else other


def combine_values(
    acc: list[float], other: list[float], op: ReduceOp | str
) -> list[float]:
    """Elementwise ``acc op other`` — the one combine everybody shares.

    Both backends and both reference functions call exactly this, so a
    reduction's bit pattern is fixed by its combine *order* alone.
    """
    op = ReduceOp.parse(op)
    if len(acc) != len(other):
        raise ConfigError(
            f"reduce length mismatch: {len(acc)} vs {len(other)}"
        )
    return [combine_scalar(a, b, op) for a, b in zip(acc, other)]


def ring_segments(n_values: int, n_ranks: int) -> list[tuple[int, int]]:
    """The ring algorithm's vector partition: one (start, stop) per rank.

    The first ``n_values % n_ranks`` segments hold one extra value, so
    any vector length works (including lengths below the rank count,
    which leave trailing segments empty).  Machine code and the ring
    reference both use exactly this partition.
    """
    if n_ranks < 1:
        raise ConfigError(f"ring needs at least one rank, got {n_ranks}")
    base, extra = divmod(n_values, n_ranks)
    bounds = []
    start = 0
    for index in range(n_ranks):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


# ---------------------------------------------------------------------------
# Pure-python references (exact combine orders)
# ---------------------------------------------------------------------------


def reference_reduce(
    contributions: list[list[float]],
    root: int,
    op: ReduceOp | str = ReduceOp.SUM,
    algorithm: CollectiveAlgorithm | str = CollectiveAlgorithm.LINEAR,
) -> list[float]:
    """The exact vector a machine reduce must deliver at ``root``.

    ``linear``: the root combines contributions in ascending rank order
    (its own in place).  ``tree``: the binomial recursion — at mask m,
    every subtree root with relative rank ``rr`` (``rr & m == 0``)
    absorbs the finished accumulator of relative rank ``rr | m``.
    ``ring`` is an allreduce schedule; a rooted reduce under it runs the
    tree, so its reference here is the tree order.
    """
    algorithm = CollectiveAlgorithm.parse(algorithm).rooted().combine_order()
    n = len(contributions)
    if algorithm is CollectiveAlgorithm.LINEAR:
        acc = list(contributions[0])
        for rank in range(1, n):
            acc = combine_values(acc, contributions[rank], op)
        return acc
    accs = [list(contributions[(rr + root) % n]) for rr in range(n)]
    mask = 1
    while mask < n:
        for rr in range(n):
            peer = rr | mask
            if rr & mask == 0 and peer != rr and peer < n:
                accs[rr] = combine_values(accs[rr], accs[peer], op)
        mask <<= 1
    return accs[0]


def reference_allreduce(
    contributions: list[list[float]],
    op: ReduceOp | str = ReduceOp.SUM,
    algorithm: CollectiveAlgorithm | str = CollectiveAlgorithm.LINEAR,
    groups: list[list[int]] | None = None,
) -> list[float]:
    """The exact allreduce vector, per algorithm.

    ``linear``/``tree``/``hw``: reduce at rank 0 + broadcast.  ``ring``:
    reduce-scatter + allgather — segment ``j`` (of the
    :func:`ring_segments` partition) accumulates around the ring
    starting at rank ``j``, each hop combining the arriving chain into
    the local contribution accumulator-first:
    ``v_k = combine(contrib[(j+k) % P], v_{k-1})``.

    ``hier`` composes the two: a ``ring`` allreduce within each rank
    group of ``groups`` (the machine takes them from
    ``ctx.rank_groups``, one group per chiplet; they must partition the
    ranks), then the ``tree`` reduce order across the group sums in
    group order.  The broadcasts back down move bits unchanged, so they
    do not appear in the combine order.  With ``groups`` None or a
    single group, ``hier`` is exactly ``ring``.
    """
    algorithm = CollectiveAlgorithm.parse(algorithm)
    if algorithm is CollectiveAlgorithm.HIER:
        if not groups:
            groups = [list(range(len(contributions)))]
        group_sums = [
            reference_allreduce(
                [contributions[rank] for rank in members],
                op,
                CollectiveAlgorithm.RING,
            )
            for members in groups
        ]
        return reference_reduce(group_sums, 0, op, CollectiveAlgorithm.TREE)
    if algorithm is not CollectiveAlgorithm.RING:
        return reference_reduce(contributions, 0, op, algorithm)
    n = len(contributions)
    n_values = len(contributions[0])
    result: list[float] = []
    for j, (start, stop) in enumerate(ring_segments(n_values, n)):
        value = list(contributions[j][start:stop])
        for k in range(1, n):
            value = combine_values(
                list(contributions[(j + k) % n][start:stop]), value, op
            )
        result.extend(value)
    return result


# ---------------------------------------------------------------------------
# The backend facade
# ---------------------------------------------------------------------------


class EmpiCollectives:
    """Message-passing backend: collectives over TIE streams and tokens.

    A thin adapter presenting the shared collective interface (``barrier``
    / ``bcast`` / ``reduce`` / ``allreduce`` / ``scatter`` / ``gather``)
    on top of :class:`~repro.empi.runtime.Empi`, with the algorithm
    chosen once at construction — the sweep axis the DSE harness turns.
    """

    model = CommModel.EMPI

    def __init__(
        self,
        ctx: "ProgramContext",
        algorithm: CollectiveAlgorithm | str = CollectiveAlgorithm.LINEAR,
    ) -> None:
        if ctx.empi is None:
            raise ConfigError("context has no eMPI endpoint bound")
        self.ctx = ctx
        self.empi = ctx.empi
        self.algorithm = CollectiveAlgorithm.parse(algorithm)

    def _phased(self, label: str, frag: "Program") -> "Program":
        """Bracket a blocking collective with zero-cycle phase notes.

        The notes cost nothing in simulated time (``note`` ops are
        zero-cycle) and let the trace exporter render each collective as
        a span on the rank's timeline.
        """
        yield ("note", f"{NOTE_PHASE_ENTER} {label}")
        result = yield from frag
        yield ("note", f"{NOTE_PHASE_EXIT} {label}")
        return result

    def barrier(self) -> "Program":
        yield from self._phased("barrier", self.empi.barrier())

    def send(self, dst_rank: int, values: list[float]) -> "Program":
        """Blocking point-to-point send of doubles (MPI_send)."""
        yield from self.empi.send_doubles(dst_rank, values)

    def recv(self, src_rank: int, n_values: int) -> "Program":
        """Blocking point-to-point receive of doubles (MPI_receive)."""
        result = yield from self.empi.recv_doubles(src_rank, n_values)
        return result

    def bcast(self, root: int, values: list[float] | None,
              n_values: int) -> "Program":
        result = yield from self._phased(
            f"bcast[{self.algorithm.value}]",
            self.empi.bcast_doubles(
                root, values, n_values, algorithm=self.algorithm
            ),
        )
        return result

    def reduce(self, root: int, values: list[float],
               op: ReduceOp | str = ReduceOp.SUM) -> "Program":
        result = yield from self._phased(
            f"reduce[{self.algorithm.value}]",
            self.empi.reduce_doubles(
                root, values, op=op, algorithm=self.algorithm
            ),
        )
        return result

    def allreduce(self, values: list[float],
                  op: ReduceOp | str = ReduceOp.SUM) -> "Program":
        result = yield from self._phased(
            f"allreduce[{self.algorithm.value}]",
            self.empi.allreduce_doubles(
                values, op=op, algorithm=self.algorithm
            ),
        )
        return result

    def scatter(self, root: int, chunks: list[list[float]] | None,
                n_values: int) -> "Program":
        result = yield from self._phased(
            "scatter",
            self.empi.scatter_doubles(root, chunks, n_values),
        )
        return result

    def gather(self, root: int, values: list[float]) -> "Program":
        result = yield from self._phased(
            "gather", self.empi.gather_doubles(root, values)
        )
        return result

    # -- non-blocking interface (mirrored by SharedMemoryCollectives) -------
    #
    # Thin delegation to the Empi request layer, with the backend's
    # configured algorithm applied to the collectives, so application
    # code is backend-agnostic for overlap exactly as it is for the
    # blocking collectives.

    def isend(self, dst_rank: int, values: list[float]) -> "Program":
        request = yield from self.empi.isend(dst_rank, values)
        return request

    def irecv(self, src_rank: int, n_values: int) -> "Program":
        request = yield from self.empi.irecv(src_rank, n_values)
        return request

    def ibcast(self, root: int, values: list[float] | None,
               n_values: int) -> "Program":
        request = yield from self.empi.ibcast_doubles(
            root, values, n_values, algorithm=self.algorithm
        )
        return request

    def ireduce(self, root: int, values: list[float],
                op: ReduceOp | str = ReduceOp.SUM) -> "Program":
        request = yield from self.empi.ireduce_doubles(
            root, values, op=op, algorithm=self.algorithm
        )
        return request

    def iallreduce(self, values: list[float],
                   op: ReduceOp | str = ReduceOp.SUM) -> "Program":
        request = yield from self.empi.iallreduce_doubles(
            values, op=op, algorithm=self.algorithm
        )
        return request

    def wait(self, request) -> "Program":
        result = yield from self.empi.wait(request)
        return result

    def waitall(self, requests) -> "Program":
        results = yield from self.empi.waitall(requests)
        return results

    def waitany(self, requests) -> "Program":
        index, result = yield from self.empi.waitany(requests)
        return index, result

    def waitsome(self, requests) -> "Program":
        completed = yield from self.empi.waitsome(requests)
        return completed

    def test(self, request) -> "Program":
        done = yield from self.empi.test(request)
        return done

    def progress(self) -> "Program":
        yield from self.empi.progress()

    def overlap(self, frag: "Program", poll_interval: int = 2) -> "Program":
        result = yield from self.empi.overlap(frag, poll_interval)
        return result


def make_comm(
    ctx: "ProgramContext",
    model: CommModel | str,
    algorithm: CollectiveAlgorithm | str = CollectiveAlgorithm.LINEAR,
    base_addr: int | None = None,
    max_values: int = 64,
    poll_backoff: int = 24,
    p2p_values: int = 0,
):
    """Build the collective backend for one rank's program.

    ``empi`` ignores the shared-memory arguments; ``pure_sm`` carves its
    slot arena at ``base_addr`` (default: the bottom of the shared
    segment) sized for vectors of up to ``max_values`` doubles, plus —
    when ``p2p_values`` > 0 — an n x n mailbox matrix sized for
    ``p2p_values``-double messages, backing isend/irecv.  Returns an
    object with the common collective interface (blocking and
    non-blocking).
    """
    model = CommModel.parse(model)
    if model is CommModel.EMPI:
        return EmpiCollectives(ctx, algorithm)
    parsed = CollectiveAlgorithm.parse(algorithm)
    if parsed is CollectiveAlgorithm.HW:
        raise ConfigError(
            "the 'hw' collective algorithm rides the TIE/DMA hardware; "
            "it is only available on the 'empi' model"
        )
    if parsed is CollectiveAlgorithm.HIER:
        raise ConfigError(
            "the 'hier' collective algorithm schedules around the NoC "
            "topology; on 'pure_sm' every word serializes through the "
            "MPMMU whatever the schedule, so it is only available on "
            "the 'empi' model"
        )
    from repro.empi.smsync import SharedMemoryCollectives

    return SharedMemoryCollectives(
        ctx,
        base_addr=base_addr,
        max_values=max_values,
        algorithm=algorithm,
        poll_backoff=poll_backoff,
        p2p_values=p2p_values,
    )
