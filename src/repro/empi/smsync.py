"""Shared-memory synchronization (the pure-SM baseline's toolbox).

Everything here goes through the MPMMU: lock/unlock packets for mutual
exclusion and uncached loads/stores for the barrier state.  Each spin poll
is a complete Req/Data round trip plus MPMMU service time, serialized
against every other core's traffic — the synchronization cost the paper's
hybrid approach eliminates (Section III attributes >= 56% of the 5x win to
exactly this).
"""

from __future__ import annotations

import typing

from repro.empi.collectives import (
    CollectiveAlgorithm,
    CommModel,
    ReduceOp,
    combine_cost,
    combine_values,
    ring_segments,
)
from repro.empi.requests import RESCHEDULE, ProgressEngine, Request
from repro.errors import ProgramError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pe.program import Program, ProgramContext


def _lines(n_bytes: int) -> int:
    """Round a byte count up to whole 16-byte cache lines."""
    return (n_bytes + 15) & ~15


class SharedMemoryLock:
    """A critical-section lock on one shared-memory word (MPMMU-backed)."""

    def __init__(self, ctx: "ProgramContext", addr: int) -> None:
        if not ctx.map.is_shared(addr):
            raise ProgramError(f"lock word {addr:#x} must live in the shared segment")
        self.ctx = ctx
        self.addr = addr

    def acquire(self) -> "Program":
        """Blocks (with hardware NACK/retry) until the lock is granted."""
        yield ("lock", self.addr)

    def release(self) -> "Program":
        yield ("unlock", self.addr)


class SharedMemoryBarrier:
    """Sense-reversing central barrier in shared memory.

    Layout: two words in the shared segment, placed on separate cache
    lines — ``counter`` (arrival count, mutated under the lock) and
    ``sense`` (the release flag workers spin on with uncached loads).

    Per the paper's programming model, the counter and flag are accessed
    uncacheably: polling a cached copy would never observe the release
    because there is no hardware coherence.
    """

    #: Byte span reserved by :meth:`carve`: two words on separate lines.
    FOOTPRINT = 32

    def __init__(
        self,
        ctx: "ProgramContext",
        base_addr: int,
        n_workers: int | None = None,
        poll_backoff: int = 24,
    ) -> None:
        if not ctx.map.is_shared(base_addr):
            raise ProgramError(
                f"barrier state {base_addr:#x} must live in the shared segment"
            )
        self.ctx = ctx
        self.counter_addr = base_addr
        self.sense_addr = base_addr + 16
        self.lock = SharedMemoryLock(ctx, base_addr + 4)
        self.n_workers = n_workers if n_workers is not None else ctx.n_workers
        self.poll_backoff = poll_backoff
        self._local_sense = 0
        self.waits = 0
        #: Shared bytes this barrier occupies (uniform with the
        #: hierarchical flavour, whose footprint depends on group count).
        self.footprint = self.FOOTPRINT

    def wait(self) -> "Program":
        """Enter the barrier; returns when every worker has arrived."""
        self.waits += 1
        if self.n_workers == 1:
            return
        my_sense = 1 - self._local_sense
        self._local_sense = my_sense
        yield from self.lock.acquire()
        count = yield ("uload", self.counter_addr)
        count += 1
        if count == self.n_workers:
            # Last arrival: reset the counter and flip the release flag.
            yield ("ustore", self.counter_addr, 0)
            yield ("ustore", self.sense_addr, my_sense)
            yield ("fence",)
            yield from self.lock.release()
            return
        yield ("ustore", self.counter_addr, count)
        yield ("fence",)
        yield from self.lock.release()
        while True:
            flag = yield ("uload", self.sense_addr)
            if flag == my_sense:
                return
            yield ("compute", self.poll_backoff)

    def wait_frag(self) -> "Program":
        """Split-phase barrier: same protocol, but instead of burning
        backoff cycles between release polls the fragment reschedules,
        handing the core back to the progress engine (and through it to
        user compute).  Every poll is still a full MPMMU round trip —
        the cost the shared-memory model cannot shed."""
        self.waits += 1
        if self.n_workers == 1:
            return
        my_sense = 1 - self._local_sense
        self._local_sense = my_sense
        yield from self.lock.acquire()
        count = yield ("uload", self.counter_addr)
        count += 1
        if count == self.n_workers:
            yield ("ustore", self.counter_addr, 0)
            yield ("ustore", self.sense_addr, my_sense)
            yield ("fence",)
            yield from self.lock.release()
            return
        yield ("ustore", self.counter_addr, count)
        yield ("fence",)
        yield from self.lock.release()
        while True:
            flag = yield ("uload", self.sense_addr)
            if flag == my_sense:
                return
            yield RESCHEDULE


class HierarchicalBarrier:
    """Topology-aware sense-reversing barrier for chiplet systems.

    The central barrier's single counter word is a contention funnel: at
    chiplet scale every arrival fights every other core for ONE lock
    word at the MPMMU, and every NACK/retry round trip crosses the slow
    inter-chiplet links.  This flavour splits the state per rank group
    (one group per chiplet, from ``ctx.rank_groups``): members arrive at
    their *group's* counter — contending only with on-chiplet peers —
    the group leaders meet at a small central barrier sized to the group
    count, and each leader then flips its group's release sense.

    All the state still physically lives at the MPMMU (there is one
    shared memory), so every access is still an uncached round trip —
    hierarchy shortens the *lock contention* and the *release fan-out*,
    not the wire.  Layout: one 32-byte counter/lock/sense block per
    group (same shape as :class:`SharedMemoryBarrier`), then the
    leaders' central barrier block.
    """

    def __init__(
        self,
        ctx: "ProgramContext",
        base_addr: int,
        groups: list[list[int]],
        poll_backoff: int = 24,
    ) -> None:
        if not groups:
            raise ProgramError("hierarchical barrier needs at least one group")
        if not ctx.map.is_shared(base_addr):
            raise ProgramError(
                f"barrier state {base_addr:#x} must live in the shared segment"
            )
        self.ctx = ctx
        self.groups = groups
        self.poll_backoff = poll_backoff
        self._group = next(g for g in groups if ctx.rank in g)
        self._is_leader = ctx.rank == self._group[0]
        index = groups.index(self._group)
        block = SharedMemoryBarrier.FOOTPRINT
        self.counter_addr = base_addr + index * block
        self.sense_addr = self.counter_addr + 16
        self.lock = SharedMemoryLock(ctx, self.counter_addr + 4)
        self._top = SharedMemoryBarrier(
            ctx,
            base_addr + len(groups) * block,
            n_workers=len(groups),
            poll_backoff=poll_backoff,
        )
        self.footprint = (len(groups) + 1) * block
        self.n_workers = sum(len(g) for g in groups)
        self._local_sense = 0
        self.waits = 0

    def _wait(self, frag: bool) -> "Program":
        self.waits += 1
        if self.n_workers == 1:
            return
        my_sense = 1 - self._local_sense
        self._local_sense = my_sense
        # Arrive at the group counter (on-chiplet contention only).
        yield from self.lock.acquire()
        count = yield ("uload", self.counter_addr)
        yield ("ustore", self.counter_addr, count + 1)
        yield ("fence",)
        yield from self.lock.release()
        if self._is_leader:
            # Collect the group, meet the other leaders, release.
            while True:
                count = yield ("uload", self.counter_addr)
                if count == len(self._group):
                    break
                if frag:
                    yield RESCHEDULE
                else:
                    yield ("compute", self.poll_backoff)
            if len(self.groups) > 1:
                if frag:
                    yield from self._top.wait_frag()
                else:
                    yield from self._top.wait()
            yield ("ustore", self.counter_addr, 0)
            yield ("ustore", self.sense_addr, my_sense)
            yield ("fence",)
            return
        while True:
            flag = yield ("uload", self.sense_addr)
            if flag == my_sense:
                return
            if frag:
                yield RESCHEDULE
            else:
                yield ("compute", self.poll_backoff)

    def wait(self) -> "Program":
        """Enter the barrier; returns when every worker has arrived."""
        yield from self._wait(frag=False)

    def wait_frag(self) -> "Program":
        """Split-phase flavour: reschedules between polls (cf.
        :meth:`SharedMemoryBarrier.wait_frag`)."""
        yield from self._wait(frag=True)


class SharedMemoryCollectives:
    """Collectives over the MPMMU: the pure-SM baseline's answer to eMPI.

    Layout (all in the shared segment, uncacheably accessed):

    * a :class:`SharedMemoryBarrier` at ``base_addr``;
    * one payload slot per rank, each ``max_values`` doubles rounded to
      whole cache lines, so no slot shares a line with another writer.

    Every payload word is an uncached MPMMU round trip and every phase
    boundary is a full shared-memory barrier — the serialization the
    paper's Section III charges against the pure-SM model, now measurable
    per collective.  Combine orders match the message-passing backend
    exactly (``linear``: root reads slots in ascending rank order;
    ``tree``: binomial rounds where the parent absorbs the peer's slot),
    so a program's numerical result is identical under either backend.
    """

    model = CommModel.PURE_SM

    def __init__(
        self,
        ctx: "ProgramContext",
        base_addr: int | None = None,
        max_values: int = 64,
        algorithm: CollectiveAlgorithm | str = CollectiveAlgorithm.LINEAR,
        n_workers: int | None = None,
        poll_backoff: int = 24,
        p2p_values: int = 0,
    ) -> None:
        if max_values < 1:
            raise ProgramError("collective arena needs at least one value slot")
        base = ctx.shared_base if base_addr is None else base_addr
        if not ctx.map.is_shared(base):
            raise ProgramError(
                f"collective arena {base:#x} must live in the shared segment"
            )
        self.ctx = ctx
        self.algorithm = CollectiveAlgorithm.parse(algorithm)
        if self.algorithm is CollectiveAlgorithm.HIER:
            raise ProgramError(
                "the 'hier' collective algorithm schedules around the NoC "
                "topology; on the pure-SM model every word serializes "
                "through the MPMMU whatever the schedule, so it is only "
                "available on the 'empi' model"
            )
        self.n_workers = n_workers if n_workers is not None else ctx.n_workers
        self.max_values = max_values
        # Topology awareness: on a chiplet system (ctx.rank_groups set by
        # the builder) a full-communicator arena gets the hierarchical
        # barrier — per-chiplet arrival counters, leaders-only central
        # meet — instead of funnelling every arrival through one lock
        # word.  Flat topologies and sub-communicators keep the central
        # barrier, bit-and-cycle identical to before.
        groups = getattr(ctx, "rank_groups", None)
        if (
            groups
            and len(groups) > 1
            and self.n_workers == ctx.n_workers
        ):
            self.barrier_state: (
                SharedMemoryBarrier | HierarchicalBarrier
            ) = HierarchicalBarrier(
                ctx, base, groups, poll_backoff=poll_backoff
            )
        else:
            self.barrier_state = SharedMemoryBarrier(
                ctx, base, n_workers=self.n_workers, poll_backoff=poll_backoff
            )
        self.slot_stride = _lines(max_values * 8)
        self.slot_base = base + self.barrier_state.footprint
        #: Total shared bytes this arena occupies (for callers placing
        #: their own data after it).
        self.footprint = (
            self.barrier_state.footprint + self.n_workers * self.slot_stride
        )
        #: Non-blocking machinery: a progress engine per rank, plus (when
        #: ``p2p_values`` > 0) an n x n mailbox matrix for isend/irecv.
        #: Every rank computes the same layout arithmetic, so channel
        #: addresses agree without coordination.
        self.engine = ProgressEngine()
        self.p2p_values = p2p_values
        self._channels: dict[tuple[int, int], SharedMemoryChannel] = {}
        if p2p_values > 0:
            self.channel_stride = SharedMemoryChannel.footprint_for(p2p_values)
            self.channel_base = base + self.footprint
            self.footprint += self.n_workers * self.n_workers * self.channel_stride

    def _slot(self, index: int) -> int:
        return self.slot_base + index * self.slot_stride

    def _channel(self, src: int, dst: int) -> "SharedMemoryChannel":
        """The (src -> dst) mailbox; built on demand at its fixed address."""
        if self.p2p_values < 1:
            raise ProgramError(
                "shared-memory isend/irecv need p2p_values > 0 at construction"
            )
        channel = self._channels.get((src, dst))
        if channel is None:
            addr = self.channel_base + (
                (src * self.n_workers + dst) * self.channel_stride
            )
            channel = SharedMemoryChannel(self.ctx, addr, self.p2p_values)
            self._channels[(src, dst)] = channel
        return channel

    # -- slot plumbing ------------------------------------------------------

    def _write_slot(self, index: int, values: list[float]) -> "Program":
        """Uncached-store a vector into a slot and drain it to memory."""
        if len(values) > self.max_values:
            raise ProgramError(
                f"vector of {len(values)} exceeds arena slots "
                f"({self.max_values} values)"
            )
        addr = self._slot(index)
        for offset, value in enumerate(values):
            yield from self.ctx.uncached_store_double(addr + 8 * offset, value)
        yield ("fence",)

    def _read_slot(self, index: int, n_values: int) -> "Program":
        addr = self._slot(index)
        values = []
        for offset in range(n_values):
            value = yield from self.ctx.uncached_load_double(addr + 8 * offset)
            values.append(value)
        return values

    def _combine_cost(self, n_values: int, op: ReduceOp) -> int:
        return combine_cost(self.ctx.cost, n_values, op)

    def _check_engine_idle(
        self, what: str,
        algorithm: "CollectiveAlgorithm | None" = None,
    ) -> None:
        # Same rule (and same message shape) as Empi: blocking ops would
        # race outstanding request fragments for the mailboxes, the slot
        # arena and — unlike eMPI, whose barrier rides a separate token
        # segment — the barrier counter itself, silently corrupting
        # shared state.  Refuse, naming the algorithm in use so
        # mixed-algorithm apps can tell which call site raced.
        if not self.engine.idle:
            labels = ", ".join(self.engine.active_labels)
            op = what if algorithm is None else f"{what}[{algorithm.value}]"
            raise ProgramError(
                f"rank {self.ctx.rank}: blocking {op} with "
                f"{self.engine.n_active} non-blocking request(s) "
                f"outstanding ({labels}); wait/waitall them first"
            )

    # -- the collective interface (mirrors EmpiCollectives) -----------------

    def barrier(self) -> "Program":
        self._check_engine_idle("barrier")
        yield from self.barrier_state.wait()

    def send(self, dst_rank: int, values: list[float]) -> "Program":
        """Blocking point-to-point send through the (src, dst) mailbox."""
        self._check_engine_idle("send")
        yield from self._channel(self.ctx.rank, dst_rank).send(values)

    def recv(self, src_rank: int, n_values: int) -> "Program":
        """Blocking point-to-point receive from the (src, dst) mailbox."""
        self._check_engine_idle("recv")
        result = yield from self._channel(src_rank, self.ctx.rank).recv(
            n_values
        )
        return result

    def bcast(self, root: int, values: list[float] | None,
              n_values: int) -> "Program":
        """Root publishes its slot; everyone reads it back uncached.

        The MPMMU serializes all readers whatever the software does, so
        there is a single sensible SM broadcast and the configured
        algorithm does not change the traffic pattern.
        """
        self._check_engine_idle("bcast")
        ctx = self.ctx
        if ctx.rank == root:
            if values is None or len(values) != n_values:
                raise ProgramError("broadcast root must supply the payload")
            if self.n_workers == 1:
                return list(values)
            yield from self._write_slot(root, values)
            yield from self.barrier()
            result = list(values)
        else:
            yield from self.barrier()
            result = yield from self._read_slot(root, n_values)
        # Root may not reuse the arena until every rank has read it.
        yield from self.barrier()
        return result

    def reduce(self, root: int, values: list[float],
               op: ReduceOp | str = ReduceOp.SUM) -> "Program":
        self._check_engine_idle("reduce", self.algorithm)
        op = ReduceOp.parse(op)
        n = self.n_workers
        if n == 1:
            return list(values)
        if self.algorithm is CollectiveAlgorithm.LINEAR:
            result = yield from self._reduce_linear(root, values, op)
        else:
            result = yield from self._reduce_tree(root, values, op)
        yield from self.barrier()
        return result

    def _reduce_linear(self, root: int, values: list[float],
                       op: ReduceOp) -> "Program":
        """Everyone publishes; the root combines in ascending rank order."""
        ctx = self.ctx
        n_values = len(values)
        yield from self._write_slot(ctx.rank, values)
        yield from self.barrier()
        if ctx.rank != root:
            return None
        acc: list[float] | None = None
        for rank in range(self.n_workers):
            if rank == ctx.rank:
                contrib = list(values)
            else:
                contrib = yield from self._read_slot(rank, n_values)
            if acc is None:
                acc = contrib
            else:
                acc = combine_values(acc, contrib, op)
                yield ("compute", self._combine_cost(n_values, op))
        return acc

    def _reduce_tree(self, root: int, values: list[float],
                     op: ReduceOp) -> "Program":
        """Binomial rounds: parents absorb their peer's slot each round.

        Slots are indexed by *relative* rank so the tree arithmetic
        matches the message-passing backend bit for bit; a barrier
        separates rounds (a parent may only read a slot its child has
        finished updating).
        """
        ctx = self.ctx
        n = self.n_workers
        n_values = len(values)
        relative = (ctx.rank - root) % n
        yield from self._write_slot(relative, values)
        acc = list(values)
        done = False
        mask = 1
        while mask < n:
            yield from self.barrier()
            if not done:
                if relative & mask:
                    # Our accumulator is final; the parent reads our slot.
                    done = True
                else:
                    peer = relative | mask
                    if peer != relative and peer < n:
                        other = yield from self._read_slot(peer, n_values)
                        acc = combine_values(acc, other, op)
                        yield ("compute", self._combine_cost(n_values, op))
                        yield from self._write_slot(relative, acc)
            mask <<= 1
        yield from self.barrier()
        return acc if ctx.rank == root else None

    def allreduce(self, values: list[float],
                  op: ReduceOp | str = ReduceOp.SUM) -> "Program":
        if self.n_workers > 1:
            # Named for the op the caller issued (parity with Empi's
            # allreduce guard), not the inner reduce/bcast legs.
            self._check_engine_idle("allreduce", self.algorithm)
        if self.algorithm is CollectiveAlgorithm.RING and self.n_workers > 1:
            result = yield from self._allreduce_ring(
                values, ReduceOp.parse(op), self.barrier_state.wait
            )
            return result
        reduced = yield from self.reduce(0, values, op)
        if self.ctx.rank == 0:
            result = yield from self.bcast(0, reduced, len(values))
        else:
            result = yield from self.bcast(0, None, len(values))
        return result

    def _allreduce_ring(self, values: list[float], op: ReduceOp,
                        barrier: "typing.Callable") -> "Program":
        """Ring allreduce over the slot arena: the pure-SM mirror.

        Same :func:`~repro.empi.collectives.ring_segments` partition and
        the same accumulator-first combine order as the message-passing
        ring, so delivered bits are identical; but every segment hop is
        publish-own-slot / barrier / read-left-neighbour's-slot /
        barrier — 2(P-1) barrier pairs of MPMMU round trips, the
        serialization the hybrid ring does not pay.  ``barrier`` is the
        barrier flavour (spinning for the blocking path, rescheduling
        ``wait_frag`` for fragments), which is the only difference
        between the two.
        """
        ctx = self.ctx
        n = self.n_workers
        segments = ring_segments(len(values), n)
        acc = list(values)
        rank = ctx.rank
        prv = (rank - 1) % n
        for phase in ("reduce_scatter", "allgather"):
            for step in range(n - 1):
                if phase == "reduce_scatter":
                    s0, s1 = segments[(rank - step) % n]
                    r0, r1 = segments[(rank - step - 1) % n]
                else:
                    s0, s1 = segments[(rank + 1 - step) % n]
                    r0, r1 = segments[(rank - step) % n]
                if s1 > s0:
                    yield from self._write_slot(rank, acc[s0:s1])
                yield from barrier()
                n_recv = r1 - r0
                if n_recv:
                    other = yield from self._read_slot(prv, n_recv)
                    if phase == "reduce_scatter":
                        acc[r0:r1] = combine_values(acc[r0:r1], other, op)
                        yield ("compute", self._combine_cost(n_recv, op))
                    else:
                        acc[r0:r1] = other
                # A slot may only be republished once its reader is done.
                yield from barrier()
        return acc

    def scatter(self, root: int, chunks: list[list[float]] | None,
                n_values: int) -> "Program":
        self._check_engine_idle("scatter")
        ctx = self.ctx
        n = self.n_workers
        if ctx.rank == root:
            if chunks is None or len(chunks) != n:
                raise ProgramError("scatter root must supply one chunk per rank")
            if any(len(chunk) != n_values for chunk in chunks):
                raise ProgramError(f"scatter chunks must hold {n_values} values")
            if n == 1:
                return list(chunks[root])
            for rank in range(n):
                if rank != root:
                    yield from self._write_slot(rank, chunks[rank])
            yield from self.barrier()
            result = list(chunks[root])
        else:
            yield from self.barrier()
            result = yield from self._read_slot(ctx.rank, n_values)
        yield from self.barrier()
        return result

    def gather(self, root: int, values: list[float]) -> "Program":
        self._check_engine_idle("gather")
        ctx = self.ctx
        n = self.n_workers
        if n == 1:
            return [list(values)]
        yield from self._write_slot(ctx.rank, values)
        yield from self.barrier()
        result = None
        if ctx.rank == root:
            gathered: list[list[float] | None] = [None] * n
            gathered[root] = list(values)
            for rank in range(n):
                if rank != root:
                    gathered[rank] = yield from self._read_slot(rank, len(values))
            result = gathered
        yield from self.barrier()
        return result

    # -- non-blocking operations (request/progress engine) ------------------
    #
    # The pure-SM answer to the eMPI request layer: the same Request /
    # wait / overlap surface, but every fragment step is an uncached
    # MPMMU round trip.  The core itself must move every word, so there
    # is no hardware to overlap with — exactly the asymmetry the hybrid
    # architecture exists to exploit, now measurable per request.

    def isend(self, dst_rank: int, values: list[float]) -> "Program":
        request = yield from self.engine.post(
            self._frag_isend(dst_rank, values), f"isend->{dst_rank}"
        )
        return request

    def irecv(self, src_rank: int, n_values: int) -> "Program":
        request = yield from self.engine.post(
            self._frag_irecv(src_rank, n_values), f"irecv<-{src_rank}"
        )
        return request

    def ibcast(self, root: int, values: list[float] | None,
               n_values: int) -> "Program":
        request = yield from self.engine.post(
            self._frag_collective(self._frag_bcast_body(root, values, n_values)),
            f"ibcast[{self.algorithm.value}]",
        )
        return request

    def ireduce(self, root: int, values: list[float],
                op: ReduceOp | str = ReduceOp.SUM) -> "Program":
        request = yield from self.engine.post(
            self._frag_collective(
                self._frag_reduce_body(root, values, ReduceOp.parse(op))
            ),
            f"ireduce[{self.algorithm.value}]",
        )
        return request

    def iallreduce(self, values: list[float],
                   op: ReduceOp | str = ReduceOp.SUM) -> "Program":
        request = yield from self.engine.post(
            self._frag_collective(
                self._frag_allreduce_body(values, ReduceOp.parse(op))
            ),
            f"iallreduce[{self.algorithm.value}]",
        )
        return request

    def wait(self, request: Request) -> "Program":
        result = yield from self.engine.wait(request)
        return result

    def waitall(self, requests: list[Request]) -> "Program":
        results = yield from self.engine.waitall(requests)
        return results

    def waitany(self, requests: list[Request]) -> "Program":
        index, result = yield from self.engine.waitany(requests)
        return index, result

    def waitsome(self, requests: list[Request]) -> "Program":
        completed = yield from self.engine.waitsome(requests)
        return completed

    def test(self, request: Request) -> "Program":
        done = yield from self.engine.test(request)
        return done

    def progress(self) -> "Program":
        yield from self.engine.progress()

    def overlap(self, frag: "Program", poll_interval: int = 2) -> "Program":
        result = yield from self.engine.overlap(frag, poll_interval)
        return result

    # -- shared-memory communication fragments ------------------------------

    def _frag_isend(self, dst_rank: int, values: list[float]) -> "Program":
        # One mailbox per (src, dst) pair; sends to the same peer take
        # turns so back-to-back isends deliver in posting order.
        turn = self.engine.turn(("chan_tx", dst_rank))
        token = object()
        turn.enter(token)
        while not turn.holds(token):
            yield RESCHEDULE
        yield from self._channel(self.ctx.rank, dst_rank).send_frag(values)
        turn.leave(token)

    def _frag_irecv(self, src_rank: int, n_values: int) -> "Program":
        turn = self.engine.turn(("chan_rx", src_rank))
        token = object()
        turn.enter(token)
        while not turn.holds(token):
            yield RESCHEDULE
        values = yield from self._channel(src_rank, self.ctx.rank).recv_frag(
            n_values
        )
        turn.leave(token)
        return values

    def _frag_collective(self, body: "Program") -> "Program":
        # The slot arena and barrier are single shared resources: only
        # one non-blocking collective runs at a time, and every rank
        # must post its collectives in the same order (same rule as the
        # eMPI engine).
        turn = self.engine.turn("collective")
        token = object()
        turn.enter(token)
        while not turn.holds(token):
            yield RESCHEDULE
        result = yield from body
        turn.leave(token)
        return result

    def _ibarrier(self) -> "Program":
        yield from self.barrier_state.wait_frag()

    def _frag_bcast_body(self, root: int, values: list[float] | None,
                         n_values: int) -> "Program":
        # Mirrors bcast() phase for phase; only the barrier polls differ
        # (reschedule instead of backoff), so delivered bits are equal.
        ctx = self.ctx
        if ctx.rank == root:
            if values is None or len(values) != n_values:
                raise ProgramError("broadcast root must supply the payload")
            if self.n_workers == 1:
                return list(values)
            yield from self._write_slot(root, values)
            yield from self._ibarrier()
            result = list(values)
        else:
            yield from self._ibarrier()
            result = yield from self._read_slot(root, n_values)
        yield from self._ibarrier()
        return result

    def _frag_reduce_body(self, root: int, values: list[float],
                          op: ReduceOp) -> "Program":
        n = self.n_workers
        if n == 1:
            return list(values)
        if self.algorithm is CollectiveAlgorithm.LINEAR:
            result = yield from self._frag_reduce_linear(root, values, op)
        else:
            result = yield from self._frag_reduce_tree(root, values, op)
        yield from self._ibarrier()
        return result

    def _frag_reduce_linear(self, root: int, values: list[float],
                            op: ReduceOp) -> "Program":
        # Same combine order as _reduce_linear: ascending rank at root.
        ctx = self.ctx
        n_values = len(values)
        yield from self._write_slot(ctx.rank, values)
        yield from self._ibarrier()
        if ctx.rank != root:
            return None
        acc: list[float] | None = None
        for rank in range(self.n_workers):
            if rank == ctx.rank:
                contrib = list(values)
            else:
                contrib = yield from self._read_slot(rank, n_values)
            if acc is None:
                acc = contrib
            else:
                acc = combine_values(acc, contrib, op)
                yield ("compute", self._combine_cost(n_values, op))
        return acc

    def _frag_reduce_tree(self, root: int, values: list[float],
                          op: ReduceOp) -> "Program":
        # Same binomial rounds as _reduce_tree, relative-rank slots.
        ctx = self.ctx
        n = self.n_workers
        n_values = len(values)
        relative = (ctx.rank - root) % n
        yield from self._write_slot(relative, values)
        acc = list(values)
        done = False
        mask = 1
        while mask < n:
            yield from self._ibarrier()
            if not done:
                if relative & mask:
                    done = True
                else:
                    peer = relative | mask
                    if peer != relative and peer < n:
                        other = yield from self._read_slot(peer, n_values)
                        acc = combine_values(acc, other, op)
                        yield ("compute", self._combine_cost(n_values, op))
                        yield from self._write_slot(relative, acc)
            mask <<= 1
        yield from self._ibarrier()
        return acc if ctx.rank == root else None

    def _frag_allreduce_body(self, values: list[float],
                             op: ReduceOp) -> "Program":
        if self.algorithm is CollectiveAlgorithm.RING and self.n_workers > 1:
            # Same ring schedule, split-phase barriers: polls reschedule
            # so overlapped compute runs between MPMMU round trips.
            result = yield from self._allreduce_ring(
                values, op, self.barrier_state.wait_frag
            )
            return result
        reduced = yield from self._frag_reduce_body(0, values, op)
        if self.ctx.rank == 0:
            result = yield from self._frag_bcast_body(0, reduced, len(values))
        else:
            result = yield from self._frag_bcast_body(0, None, len(values))
        return result


class SharedMemoryChannel:
    """Single-slot producer/consumer mailbox in shared memory.

    One flag word plus a payload area, on separate cache lines.  The
    producer polls the flag EMPTY, uncached-stores the payload, fences
    (the paper's producer obligation: data must be globally visible
    before the flag flips), then raises the flag; the consumer polls
    FULL, reads the payload and lowers the flag.  Every poll is a
    complete MPMMU round trip — the streaming counterpart of the
    spin-barrier cost, and the SM baseline the TIE streams beat.
    """

    EMPTY = 0
    FULL = 1

    def __init__(
        self,
        ctx: "ProgramContext",
        base_addr: int,
        capacity_values: int,
        poll_backoff: int = 24,
    ) -> None:
        if not ctx.map.is_shared(base_addr):
            raise ProgramError(
                f"channel state {base_addr:#x} must live in the shared segment"
            )
        if capacity_values < 1:
            raise ProgramError("channel capacity must be >= 1 value")
        self.ctx = ctx
        self.flag_addr = base_addr
        self.data_addr = base_addr + 16
        self.capacity_values = capacity_values
        self.poll_backoff = poll_backoff
        self.footprint = self.footprint_for(capacity_values)

    @staticmethod
    def footprint_for(capacity_values: int) -> int:
        """Shared bytes one channel occupies (for layout planning)."""
        return 16 + _lines(capacity_values * 8)

    def _await_flag(self, wanted: int) -> "Program":
        while True:
            flag = yield ("uload", self.flag_addr)
            if flag == wanted:
                return
            yield ("compute", self.poll_backoff)

    def send(self, values: list[float]) -> "Program":
        if len(values) > self.capacity_values:
            raise ProgramError(
                f"message of {len(values)} exceeds channel capacity "
                f"({self.capacity_values} values)"
            )
        yield from self._await_flag(self.EMPTY)
        for offset, value in enumerate(values):
            yield from self.ctx.uncached_store_double(
                self.data_addr + 8 * offset, value
            )
        yield ("fence",)
        yield ("ustore", self.flag_addr, self.FULL)
        yield ("fence",)

    def recv(self, n_values: int) -> "Program":
        yield from self._await_flag(self.FULL)
        values = []
        for offset in range(n_values):
            value = yield from self.ctx.uncached_load_double(
                self.data_addr + 8 * offset
            )
            values.append(value)
        yield ("ustore", self.flag_addr, self.EMPTY)
        yield ("fence",)
        return values

    # -- split-phase variants (progress-engine fragments) -------------------

    def _await_flag_frag(self, wanted: int) -> "Program":
        while True:
            flag = yield ("uload", self.flag_addr)
            if flag == wanted:
                return
            yield RESCHEDULE

    def send_frag(self, values: list[float]) -> "Program":
        """Same mailbox protocol as :meth:`send`, rescheduling between
        flag polls instead of spinning — the SM stand-in for an isend."""
        if len(values) > self.capacity_values:
            raise ProgramError(
                f"message of {len(values)} exceeds channel capacity "
                f"({self.capacity_values} values)"
            )
        yield from self._await_flag_frag(self.EMPTY)
        for offset, value in enumerate(values):
            yield from self.ctx.uncached_store_double(
                self.data_addr + 8 * offset, value
            )
        yield ("fence",)
        yield ("ustore", self.flag_addr, self.FULL)
        yield ("fence",)

    def recv_frag(self, n_values: int) -> "Program":
        yield from self._await_flag_frag(self.FULL)
        values = []
        for offset in range(n_values):
            value = yield from self.ctx.uncached_load_double(
                self.data_addr + 8 * offset
            )
            values.append(value)
        yield ("ustore", self.flag_addr, self.EMPTY)
        yield ("fence",)
        return values
