"""Shared-memory synchronization (the pure-SM baseline's toolbox).

Everything here goes through the MPMMU: lock/unlock packets for mutual
exclusion and uncached loads/stores for the barrier state.  Each spin poll
is a complete Req/Data round trip plus MPMMU service time, serialized
against every other core's traffic — the synchronization cost the paper's
hybrid approach eliminates (Section III attributes >= 56% of the 5x win to
exactly this).
"""

from __future__ import annotations

import typing

from repro.errors import ProgramError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pe.program import Program, ProgramContext


class SharedMemoryLock:
    """A critical-section lock on one shared-memory word (MPMMU-backed)."""

    def __init__(self, ctx: "ProgramContext", addr: int) -> None:
        if not ctx.map.is_shared(addr):
            raise ProgramError(f"lock word {addr:#x} must live in the shared segment")
        self.ctx = ctx
        self.addr = addr

    def acquire(self) -> "Program":
        """Blocks (with hardware NACK/retry) until the lock is granted."""
        yield ("lock", self.addr)

    def release(self) -> "Program":
        yield ("unlock", self.addr)


class SharedMemoryBarrier:
    """Sense-reversing central barrier in shared memory.

    Layout: two words in the shared segment, placed on separate cache
    lines — ``counter`` (arrival count, mutated under the lock) and
    ``sense`` (the release flag workers spin on with uncached loads).

    Per the paper's programming model, the counter and flag are accessed
    uncacheably: polling a cached copy would never observe the release
    because there is no hardware coherence.
    """

    #: Byte span reserved by :meth:`carve`: two words on separate lines.
    FOOTPRINT = 32

    def __init__(
        self,
        ctx: "ProgramContext",
        base_addr: int,
        n_workers: int | None = None,
        poll_backoff: int = 24,
    ) -> None:
        if not ctx.map.is_shared(base_addr):
            raise ProgramError(
                f"barrier state {base_addr:#x} must live in the shared segment"
            )
        self.ctx = ctx
        self.counter_addr = base_addr
        self.sense_addr = base_addr + 16
        self.lock = SharedMemoryLock(ctx, base_addr + 4)
        self.n_workers = n_workers if n_workers is not None else ctx.n_workers
        self.poll_backoff = poll_backoff
        self._local_sense = 0
        self.waits = 0

    def wait(self) -> "Program":
        """Enter the barrier; returns when every worker has arrived."""
        self.waits += 1
        if self.n_workers == 1:
            return
        my_sense = 1 - self._local_sense
        self._local_sense = my_sense
        yield from self.lock.acquire()
        count = yield ("uload", self.counter_addr)
        count += 1
        if count == self.n_workers:
            # Last arrival: reset the counter and flip the release flag.
            yield ("ustore", self.counter_addr, 0)
            yield ("ustore", self.sense_addr, my_sense)
            yield ("fence",)
            yield from self.lock.release()
            return
        yield ("ustore", self.counter_addr, count)
        yield ("fence",)
        yield from self.lock.release()
        while True:
            flag = yield ("uload", self.sense_addr)
            if flag == my_sense:
                return
            yield ("compute", self.poll_backoff)
