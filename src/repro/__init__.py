"""MEDEA: hybrid shared-memory/message-passing NoC multiprocessor.

A cycle-level, fully deterministic simulator of the architecture published
as *"MEDEA: a Hybrid Shared-memory/Message-passing Multiprocessor
NoC-based Architecture"* (Tota, Casu, Ruo Roch, Rostagno, Zamboni — DATE
2010), together with the parallel Jacobi workloads, design-space
exploration harness, area model and kill-rule analysis needed to reproduce
every figure of the paper's evaluation.

Quick start::

    from repro import MedeaSystem, SystemConfig
    from repro.apps.jacobi import JacobiParams, run_jacobi

    result = run_jacobi(SystemConfig(n_workers=4, cache_size_kb=16),
                        JacobiParams(n=16, iterations=4))
    print(result.cycles_per_iteration)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record.
"""

from repro.errors import (
    ConfigError,
    DeadlockError,
    MedeaError,
    ProtocolError,
    SimulationError,
)
from repro.system.config import SystemConfig
from repro.system.medea import MedeaSystem
from repro.system.presets import (
    mesh_sweep_configs,
    paper_sweep_configs,
    reference_config,
)

__version__ = "1.1.0"

__all__ = [
    "ConfigError",
    "DeadlockError",
    "MedeaError",
    "MedeaSystem",
    "ProtocolError",
    "SimulationError",
    "SystemConfig",
    "__version__",
    "mesh_sweep_configs",
    "paper_sweep_configs",
    "reference_config",
]
