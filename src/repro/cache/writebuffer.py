"""Store (write) buffer for write-through and uncached stores.

A write-through cache without a write buffer would stall the core for a
full MPMMU round trip on *every* store.  The real machine posts stores
into a small FIFO drained by the pif2NoC bridge; the core only stalls when
the FIFO is full.  Depth is configurable — depth 1 effectively models the
unbuffered case for ablation.
"""

from __future__ import annotations

from repro.kernel.fifo import Fifo


class WriteBuffer:
    """FIFO of pending (addr, value) single-word stores."""

    def __init__(self, depth: int = 4, name: str = "wbuf") -> None:
        self.fifo: Fifo[tuple[int, int]] = Fifo(capacity=depth, name=name)
        self.stall_cycles = 0

    @property
    def depth(self) -> int:
        assert self.fifo.capacity is not None
        return self.fifo.capacity

    def try_post(self, addr: int, value: int) -> bool:
        """Queue a store; False (core must stall) when full."""
        return self.fifo.try_push((addr, value))

    def pop(self) -> tuple[int, int]:
        return self.fifo.pop()

    @property
    def empty(self) -> bool:
        return self.fifo.empty

    def __len__(self) -> int:
        return len(self.fifo)
