"""L1 cache models.

Each MEDEA core has an L1 cache with 16-byte lines, 2-64 kB capacity, and
either a write-back or write-through policy — the two axes (with core
count) of the paper's 168-point design-space exploration.  There is no
hardware coherence: software keeps shared data coherent with explicit line
writebacks (``DHWB``) and invalidations (``DII``), exposed here as
:meth:`~repro.cache.l1.L1Cache.writeback_line` and
:meth:`~repro.cache.l1.L1Cache.invalidate_line`.

The cache is a *state* model: it tracks tags, dirtiness, LRU and real data
words.  All timing lives in the processor node's memory pipeline, which
consults the cache and turns misses into NoC transactions.
"""

from repro.cache.l1 import CacheLine, L1Cache, WritePolicy
from repro.cache.writebuffer import WriteBuffer

__all__ = ["CacheLine", "L1Cache", "WriteBuffer", "WritePolicy"]
