"""Set-associative L1 cache state model."""

from __future__ import annotations

import enum

from repro.errors import ConfigError, MemoryAccessError
from repro.kernel.stats import CounterSet


class WritePolicy(enum.Enum):
    """The two write policies explored by the paper."""

    WRITE_BACK = "wb"
    WRITE_THROUGH = "wt"

    @classmethod
    def parse(cls, value: "WritePolicy | str") -> "WritePolicy":
        if isinstance(value, WritePolicy):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise ConfigError(
                f"unknown write policy {value!r}; use 'wb' or 'wt'"
            ) from None


class CacheLine:
    """One cache line: tag, state bits and the actual data words."""

    __slots__ = ("tag", "valid", "dirty", "words", "lru")

    def __init__(self, words_per_line: int) -> None:
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.words = [0] * words_per_line
        self.lru = 0


class L1Cache:
    """A blocking, set-associative, LRU cache with real data contents.

    Holding real words (not just tags) means a protocol bug — a missing
    flush, a stale line, a mis-sequenced refill — corrupts computed
    results and fails the numerical validation tests, instead of silently
    producing plausible-but-wrong cycle counts.
    """

    def __init__(
        self,
        size_bytes: int,
        line_bytes: int = 16,
        assoc: int = 2,
        policy: WritePolicy | str = WritePolicy.WRITE_BACK,
        name: str = "l1",
    ) -> None:
        policy = WritePolicy.parse(policy)
        if line_bytes < 4 or line_bytes & (line_bytes - 1):
            raise ConfigError(f"line_bytes must be a power of two >= 4: {line_bytes}")
        if size_bytes < line_bytes or size_bytes % line_bytes:
            raise ConfigError(
                f"cache size {size_bytes} not a multiple of line size {line_bytes}"
            )
        n_lines = size_bytes // line_bytes
        if assoc < 1 or assoc > n_lines or n_lines % assoc:
            raise ConfigError(f"bad associativity {assoc} for {n_lines} lines")
        n_sets = n_lines // assoc
        if n_sets & (n_sets - 1):
            raise ConfigError(f"set count must be a power of two, got {n_sets}")
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.words_per_line = line_bytes // 4
        self.assoc = assoc
        self.n_sets = n_sets
        self.policy = policy
        self._sets = [
            [CacheLine(self.words_per_line) for _ in range(assoc)]
            for _ in range(n_sets)
        ]
        self._tick = 0
        self.stats = CounterSet(name)

    # -- address helpers -----------------------------------------------------

    def line_addr(self, addr: int) -> int:
        return addr & ~(self.line_bytes - 1)

    def _locate(self, addr: int) -> tuple[int, int]:
        line_index = addr // self.line_bytes
        return line_index % self.n_sets, line_index // self.n_sets

    # -- lookups ------------------------------------------------------------------

    def probe(self, addr: int) -> CacheLine | None:
        """Tag match without statistics or LRU update (for debug reads)."""
        set_index, tag = self._locate(addr)
        for line in self._sets[set_index]:
            if line.valid and line.tag == tag:
                return line
        return None

    def lookup(self, addr: int, is_write: bool = False) -> CacheLine | None:
        """Tag match with hit/miss accounting and LRU touch."""
        line_index = addr // self.line_bytes
        set_index = line_index % self.n_sets
        tag = line_index // self.n_sets
        counters = self.stats._counters
        for line in self._sets[set_index]:
            if line.valid and line.tag == tag:
                self._tick += 1
                line.lru = self._tick
                key = "write_hits" if is_write else "read_hits"
                counters[key] = counters.get(key, 0) + 1
                return line
        key = "write_misses" if is_write else "read_misses"
        counters[key] = counters.get(key, 0) + 1
        return None

    # -- data access (line must be present) ----------------------------------------

    def read_word(self, addr: int) -> int:
        line = self.probe(addr)
        if line is None:
            raise MemoryAccessError(f"{self.name}: read_word on absent line {addr:#x}")
        return line.words[(addr % self.line_bytes) >> 2]

    def write_word(self, addr: int, value: int, mark_dirty: bool = True) -> None:
        line = self.probe(addr)
        if line is None:
            raise MemoryAccessError(f"{self.name}: write_word on absent line {addr:#x}")
        line.words[(addr % self.line_bytes) >> 2] = value
        if mark_dirty:
            line.dirty = True

    # -- refill path -----------------------------------------------------------------

    def victim_for(self, addr: int) -> tuple[bool, int, list[int]]:
        """Pick the LRU victim for a refill of ``addr``'s line.

        Returns ``(needs_writeback, victim_line_addr, victim_words)``.
        The victim is *not* modified; call :meth:`install` afterwards.
        """
        set_index, __ = self._locate(addr)
        victim = None
        for line in self._sets[set_index]:
            if not line.valid:
                return False, 0, []
            if victim is None or line.lru < victim.lru:
                victim = line
        assert victim is not None
        victim_addr = self._line_base(victim.tag, set_index)
        if victim.dirty:
            return True, victim_addr, list(victim.words)
        return False, victim_addr, []

    def install(self, addr: int, words: list[int]) -> None:
        """Fill the line containing ``addr`` (victim chosen as in victim_for)."""
        if len(words) != self.words_per_line:
            raise MemoryAccessError(
                f"{self.name}: refill needs {self.words_per_line} words, "
                f"got {len(words)}"
            )
        set_index, tag = self._locate(addr)
        victim = None
        for line in self._sets[set_index]:
            if not line.valid:
                victim = line
                break
            if victim is None or line.lru < victim.lru:
                victim = line
        assert victim is not None
        if victim.valid:
            self.stats.inc("evictions_dirty" if victim.dirty else "evictions_clean")
        victim.tag = tag
        victim.valid = True
        victim.dirty = False
        victim.words[:] = words
        self._tick += 1
        victim.lru = self._tick
        self.stats.inc("refills")

    def _line_base(self, tag: int, set_index: int) -> int:
        return (tag * self.n_sets + set_index) * self.line_bytes

    # -- software coherence ops (Xtensa DHWB / DII) --------------------------------------

    def writeback_line(self, addr: int) -> tuple[int, list[int]] | None:
        """DHWB: return (line_addr, words) if the line is dirty; mark clean.

        The caller is responsible for actually sending the words to memory
        (the node posts a block write).  Returns None when there is nothing
        to write back.  The line stays valid, as in the Xtensa DHWB.
        """
        self.stats.inc("dhwb_ops")
        line = self.probe(addr)
        if line is None or not line.dirty:
            return None
        line.dirty = False
        self.stats.inc("writebacks")
        set_index, __ = self._locate(addr)
        return self._line_base(line.tag, set_index), list(line.words)

    def invalidate_line(self, addr: int) -> bool:
        """DII: drop the line without writeback; True if a line was dropped.

        Invalidating a dirty line silently discards data — exactly what the
        hardware instruction does; the counter lets tests assert programs
        never do it to lines they own.
        """
        self.stats.inc("dii_ops")
        line = self.probe(addr)
        if line is None:
            return False
        if line.dirty:
            self.stats.inc("dii_dirty_dropped")
        line.valid = False
        line.dirty = False
        self.stats.inc("invalidations")
        return True

    # -- maintenance --------------------------------------------------------------------------

    def dirty_lines(self) -> list[tuple[int, list[int]]]:
        """All dirty (line_addr, words) pairs — used by drain/flush-all."""
        result = []
        for set_index, ways in enumerate(self._sets):
            for line in ways:
                if line.valid and line.dirty:
                    result.append(
                        (self._line_base(line.tag, set_index), list(line.words))
                    )
        return result

    @property
    def hits(self) -> int:
        return self.stats["read_hits"] + self.stats["write_hits"]

    @property
    def misses(self) -> int:
        return self.stats["read_misses"] + self.stats["write_misses"]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<L1Cache {self.name} {self.size_bytes // 1024}kB "
            f"{self.assoc}-way {self.policy.value}>"
        )
