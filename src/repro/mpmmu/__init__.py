"""Multiprocessor Memory Management Unit (MPMMU).

The MPMMU (paper Section II-C) is a special processor that owns the DDR
and services every shared-memory transaction in the system.  It is a pure
slave: it only ever answers transactions initiated by the worker cores.
Incoming flits split into a Pif-Request/Control FIFO (sized to the number
of processors — the implicit flow-control the paper describes) and a
Pif-Data FIFO; replies leave through one outgoing FIFO at one flit per
cycle.

It also implements the lock/unlock mechanism for atomic sections: a word
address can be locked by one core at a time; competing LOCK requests are
NACKed and the requester retries.

The serial, single-ported nature of this unit is *the* shared-memory
bottleneck the hybrid architecture works around — do not be tempted to
parallelize it.
"""

from repro.mpmmu.lock_table import LockTable
from repro.mpmmu.mpmmu import MpmmuNode

__all__ = ["LockTable", "MpmmuNode"]
