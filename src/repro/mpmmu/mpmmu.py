"""The MPMMU node: slave memory-controller processor.

State machine per transaction type (Fig. 4):

* read (single/block): pop request -> busy for service overhead plus the
  cache/DDR access -> push data reply flit(s) into the outgoing FIFO;
* write (single/block): pop request -> busy for service overhead -> grant
  ACK -> collect the writer's data flits from the Pif-Data FIFO -> busy
  for the write -> final ACK;
* lock/unlock: pop request -> busy for service overhead -> ACK (or NACK
  when the lock is held).

One transaction is in service at a time, and replies drain at one flit per
cycle through the single NoC port — the serialization that makes shared
memory the bottleneck MEDEA's message-passing path avoids.

The local cache is modelled write-through: it accelerates reads (the
latency of a read "strongly depends on the availability of the given word
inside the cache", Section II-C) while the DDR word store stays
authoritative, which keeps post-simulation validation reads simple.
"""

from __future__ import annotations

import enum

from repro.cache.l1 import L1Cache
from repro.errors import ProtocolError
from repro.kernel.component import Component
from repro.kernel.fifo import Fifo
from repro.mem.ddr import DdrModel
from repro.noc.flit import Flit
from repro.noc.network import NodePorts
from repro.noc.packet import PacketType, SubType
from repro.mpmmu.lock_table import LockTable


class _MpmmuState(enum.Enum):
    IDLE = "idle"
    BUSY = "busy"
    WAIT_DATA = "wait_data"


#: Per-transaction counter keys, precomputed off the service path.
_SERVED_KEY = {kind: f"served_{kind.name.lower()}" for kind in PacketType}


class _WriteAssembly:
    """Collects the data flits of a granted write transaction."""

    __slots__ = ("src", "addr", "kind", "expected", "slots", "filled")

    def __init__(self, src: int, addr: int, kind: PacketType, expected: int):
        self.src = src
        self.addr = addr
        self.kind = kind
        self.expected = expected
        self.slots: list[int | None] = [None] * expected
        self.filled = 0

    def insert(self, flit: Flit) -> bool:
        if flit.src != self.src:
            raise ProtocolError(
                f"data flit from node {flit.src} during write granted to "
                f"node {self.src}"
            )
        if not (0 <= flit.seq < self.expected) or self.slots[flit.seq] is not None:
            raise ProtocolError(f"bad write data sequence {flit.seq}")
        self.slots[flit.seq] = flit.data
        self.filled += 1
        return self.filled == self.expected

    def words(self) -> list[int]:
        assert self.filled == self.expected
        return [w for w in self.slots if w is not None]


class MpmmuNode(Component):
    """The memory node of the system (placed at one NoC tile)."""

    def __init__(
        self,
        ports: NodePorts,
        cache: L1Cache,
        ddr: DdrModel,
        n_workers: int,
        service_overhead: int = 4,
        cache_hit_cycles: int = 2,
        out_fifo_depth: int = 16,
        data_fifo_depth: int = 8,
    ) -> None:
        super().__init__("mpmmu")
        self.ports = ports
        ports.eject.owner = self
        self.cache = cache
        self.ddr = ddr
        self.locks = LockTable()
        self.service_overhead = service_overhead
        self.cache_hit_cycles = cache_hit_cycles
        self.req_fifo: Fifo[Flit] = Fifo(n_workers, name="mpmmu.req")
        self.data_fifo: Fifo[Flit] = Fifo(data_fifo_depth, name="mpmmu.data")
        self.out_fifo: Fifo[Flit] = Fifo(out_fifo_depth, name="mpmmu.out")
        self._state = _MpmmuState.IDLE
        self._busy_until = 0
        self._after_busy: list[Flit] = []
        self._after_state = _MpmmuState.IDLE
        self._assembly: _WriteAssembly | None = None
        # Stable deque binding so an empty RX queue costs one truth test.
        self._rx_items = ports.eject.queue._items
        # Per-flit counters batched as plain ints; folded into the
        # CounterSet when the node sleeps (see flush_stats).
        self._n_requests = 0
        self._n_data_flits = 0
        self._n_replies = 0

    # -- clocked behaviour ---------------------------------------------------

    def step(self, cycle: int) -> None:
        if self._rx_items:
            self._phase_rx()
        # Inlined _phase_fsm guards: only enter the FSM body when it can
        # actually transition this cycle.
        state = self._state
        if state is _MpmmuState.BUSY:
            if cycle >= self._busy_until:
                self._phase_fsm(cycle)
        elif state is _MpmmuState.WAIT_DATA:
            if self.data_fifo._items:
                self._drain_write_data(cycle)
        elif self.req_fifo._items:
            self._begin_service(self.req_fifo.pop(), cycle)
        self._phase_out()
        self._phase_sleep(cycle)

    def _phase_rx(self) -> None:
        queue = self.ports.eject.queue
        if queue.empty:
            return
        flit = queue.peek()
        if flit.ptype >= PacketType.MESSAGE:
            # The reference MPMMU takes no part in eMPI traffic (neither
            # MESSAGE nor MULTICAST flits).
            raise ProtocolError(f"mpmmu received message flit {flit!r}")
        if flit.subtype == int(SubType.ADDR):
            if self.req_fifo.full:
                # Request FIFO depth equals the worker count; overflow means
                # a core broke the one-outstanding-transaction contract.
                raise ProtocolError("mpmmu request FIFO overflow")
            self.req_fifo.push(queue.pop())
            self._n_requests += 1
        elif flit.subtype == int(SubType.DATA):
            if self.data_fifo.full:
                return  # leave it in the ejection queue until space frees
            self.data_fifo.push(queue.pop())
            self._n_data_flits += 1
        else:
            raise ProtocolError(f"mpmmu got unexpected subtype in {flit!r}")

    def _phase_fsm(self, cycle: int) -> None:
        if self._state is _MpmmuState.BUSY:
            if cycle < self._busy_until:
                return
            for flit in self._after_busy:
                self.out_fifo.push(flit)
            self._after_busy = []
            self._state = self._after_state
        if self._state is _MpmmuState.WAIT_DATA:
            self._drain_write_data(cycle)
            return
        if self._state is _MpmmuState.IDLE and self.req_fifo:
            self._begin_service(self.req_fifo.pop(), cycle)

    def _phase_out(self) -> None:
        if self.out_fifo._items and self.ports.inject.pending is None:
            accepted = self.ports.inject.try_inject(self.out_fifo.pop())
            assert accepted
            self._n_replies += 1

    def _phase_sleep(self, cycle: int) -> None:
        if self._rx_items or self.out_fifo._items:
            return
        if self._state is _MpmmuState.BUSY:
            # Nothing can happen before _busy_until: the FSM is gated on
            # it, the RX and out queues are empty, and a flit delivery
            # re-wakes the node in its arrival cycle.  Queued requests
            # keep (exactly) until the wakeup, so sleep through the
            # service window even when req_fifo is non-empty.
            self.flush_stats()
            self.sleep(until=self._busy_until)
            return
        if self.req_fifo._items:
            return
        if self._state is _MpmmuState.WAIT_DATA and self.data_fifo:
            return
        # IDLE, or WAIT_DATA with nothing buffered: wake on delivery.
        self.flush_stats()
        self.sleep()

    def flush_stats(self) -> None:
        """Fold the batched per-flit counters into the CounterSet."""
        inc = self.stats.inc
        if self._n_requests:
            inc("requests_received", self._n_requests)
            self._n_requests = 0
        if self._n_data_flits:
            inc("data_flits_received", self._n_data_flits)
            self._n_data_flits = 0
        if self._n_replies:
            inc("reply_flits_sent", self._n_replies)
            self._n_replies = 0

    # -- transaction service -------------------------------------------------------

    def _begin_service(self, flit: Flit, cycle: int) -> None:
        kind = flit.ptype
        addr = flit.data
        src = flit.src
        self.stats.inc(_SERVED_KEY[kind])
        if kind in (PacketType.SINGLE_READ, PacketType.BLOCK_READ):
            n_words = 1 if kind is PacketType.SINGLE_READ else 4
            words, access = self._read_words(addr, n_words)
            self._go_busy(
                cycle,
                self.service_overhead + access,
                [
                    Flit(
                        dst=src, src=self.ports.node, ptype=kind,
                        subtype=int(SubType.DATA), seq=index,
                        burst=n_words, data=word,
                    )
                    for index, word in enumerate(words)
                ],
            )
        elif kind in (PacketType.SINGLE_WRITE, PacketType.BLOCK_WRITE):
            n_words = 1 if kind is PacketType.SINGLE_WRITE else 4
            self._assembly = _WriteAssembly(src, addr, kind, n_words)
            self._go_busy(
                cycle,
                self.service_overhead,
                [self._ack(src, kind)],
                then=_MpmmuState.WAIT_DATA,
            )
        elif kind is PacketType.LOCK:
            granted = self.locks.acquire(addr, src)
            reply = self._ack(src, kind) if granted else self._nack(src, kind)
            self._go_busy(cycle, self.service_overhead, [reply])
        elif kind is PacketType.UNLOCK:
            self.locks.release(addr, src)
            self._go_busy(cycle, self.service_overhead, [self._ack(src, kind)])
        else:
            raise ProtocolError(f"mpmmu cannot serve {flit!r}")

    def _drain_write_data(self, cycle: int) -> None:
        if not self.data_fifo:
            return
        assembly = self._assembly
        assert assembly is not None
        if assembly.insert(self.data_fifo.pop()):
            words = assembly.words()
            cost = self._write_words(assembly.addr, words)
            self._assembly = None
            self._go_busy(
                cycle, cost, [self._ack(assembly.src, assembly.kind)]
            )
            self.stats.inc("writes_committed")

    def _go_busy(
        self,
        cycle: int,
        cost: int,
        replies: list[Flit],
        then: _MpmmuState = _MpmmuState.IDLE,
    ) -> None:
        self._state = _MpmmuState.BUSY
        self._busy_until = cycle + max(1, cost)
        self._after_busy = replies
        self._after_state = then
        self.stats.inc("busy_cycles", max(1, cost))

    # -- memory access (timing + data) ------------------------------------------------

    def _read_words(self, addr: int, n_words: int) -> tuple[list[int], int]:
        """Return (words, access_cycles) through the local cache."""
        line = self.cache.lookup(addr)
        if line is None:
            line_addr = self.cache.line_addr(addr)
            words, cost = self.ddr.read_block(line_addr, self.cache.words_per_line)
            self.cache.install(line_addr, words)
            offset = (addr - line_addr) >> 2
            return words[offset : offset + n_words], cost + self.cache_hit_cycles
        base = (addr % self.cache.line_bytes) >> 2
        return list(line.words[base : base + n_words]), self.cache_hit_cycles

    def _write_words(self, addr: int, words: list[int]) -> int:
        """Write-through: update the cached line if present, always hit DDR."""
        line = self.cache.lookup(addr, is_write=True)
        if line is not None:
            base = (addr % self.cache.line_bytes) >> 2
            for offset, word in enumerate(words):
                line.words[base + offset] = word
        return self.cache_hit_cycles + self.ddr.write_block(addr, words)

    def _ack(self, dst: int, kind: PacketType) -> Flit:
        return Flit(dst=dst, src=self.ports.node, ptype=kind,
                    subtype=int(SubType.ACK), seq=0, burst=1, data=0)

    def _nack(self, dst: int, kind: PacketType) -> Flit:
        return Flit(dst=dst, src=self.ports.node, ptype=kind,
                    subtype=int(SubType.NACK), seq=0, burst=1, data=0)

    # -- introspection ---------------------------------------------------------------------

    @property
    def idle(self) -> bool:
        return (
            self._state is _MpmmuState.IDLE
            and self.req_fifo.empty
            and self.data_fifo.empty
            and self.out_fifo.empty
            and self.ports.eject.queue.empty
        )

    def describe_state(self) -> str:
        return (
            f"{self._state.value}, req={len(self.req_fifo)}, "
            f"data={len(self.data_fifo)}, out={len(self.out_fifo)}, "
            f"locks_held={self.locks.held_count}"
        )
