"""Lock table: word-granular locks for atomic shared-memory sections."""

from __future__ import annotations

from repro.errors import ProtocolError
from repro.kernel.stats import CounterSet


class LockTable:
    """Tracks which node holds a lock on which shared-memory word."""

    def __init__(self, capacity: int | None = None) -> None:
        self.capacity = capacity
        self._held: dict[int, int] = {}
        self.stats = CounterSet("locks")

    def acquire(self, addr: int, owner: int) -> bool:
        """Try to lock ``addr`` for ``owner``; False when already held.

        Re-acquiring a lock you already hold is a protocol error — the
        paper's protocol has no recursive locks, so a re-request means a
        software bug worth failing loudly on.
        """
        holder = self._held.get(addr)
        if holder == owner:
            raise ProtocolError(f"node {owner} re-locking {addr:#x} it already holds")
        if holder is not None:
            self.stats.inc("contended_requests")
            return False
        if self.capacity is not None and len(self._held) >= self.capacity:
            self.stats.inc("table_full_rejections")
            return False
        self._held[addr] = owner
        self.stats.inc("acquisitions")
        return True

    def release(self, addr: int, owner: int) -> None:
        holder = self._held.get(addr)
        if holder is None:
            raise ProtocolError(f"node {owner} unlocking {addr:#x} which is free")
        if holder != owner:
            raise ProtocolError(
                f"node {owner} unlocking {addr:#x} held by node {holder}"
            )
        del self._held[addr]
        self.stats.inc("releases")

    def holder_of(self, addr: int) -> int | None:
        return self._held.get(addr)

    @property
    def held_count(self) -> int:
        return len(self._held)
