"""Network-on-Chip: folded-torus topology with hot-potato (deflection) routing.

The MEDEA NoC (paper Section II-A) is a 2-D folded torus of single-cycle
deflection-routing switches.  Deflection routing keeps switch storage at the
theoretical minimum (one register per input link), never blocks, and needs
no back-pressure — at the price of possible out-of-order delivery, which the
receive interfaces absorb with sequence numbers (see :mod:`repro.bridge` and
:mod:`repro.pe.tie`).

Module map:

* :mod:`repro.noc.coords` — direction constants and coordinate helpers;
* :mod:`repro.noc.topology` — folded torus (and mesh, for ablations);
* :mod:`repro.noc.packet` — the bit-accurate three-level flit format of
  Fig. 5 (encode/decode to integers);
* :mod:`repro.noc.flit` — the in-simulator flit record;
* :mod:`repro.noc.switch` — one switch's combinational routing function;
* :mod:`repro.noc.network` — the clocked fabric with injection/ejection
  ports, the component the rest of the system talks to.
"""

from repro.noc.coords import DIRECTION_NAMES, EAST, NORTH, OPPOSITE, SOUTH, WEST
from repro.noc.flit import Flit
from repro.noc.network import EjectionPort, InjectionPort, NocFabric, NodePorts
from repro.noc.packet import FlitCodec, PacketType, SubType
from repro.noc.switch import route_node
from repro.noc.topology import FoldedTorusTopology, MeshTopology, Topology

__all__ = [
    "DIRECTION_NAMES",
    "EAST",
    "EjectionPort",
    "Flit",
    "FlitCodec",
    "FoldedTorusTopology",
    "InjectionPort",
    "MeshTopology",
    "NORTH",
    "NocFabric",
    "NodePorts",
    "OPPOSITE",
    "PacketType",
    "SOUTH",
    "SubType",
    "Topology",
    "WEST",
    "route_node",
]
