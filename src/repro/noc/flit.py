"""The in-simulator flit record.

The router moves these decoded records instead of flat integers; the
bit-accurate mapping lives in :mod:`repro.noc.packet` and is applied (and
range-checked) at injection when the fabric's ``strict_encoding`` option is
on, plus unconditionally in the codec round-trip tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.noc.packet import PacketType

_flit_ids = itertools.count()

#: ``dst`` value of a mask-routed MULTICAST flit: the switch routes it by
#: ``dst_mask`` (one bit per destination node) instead of the X-Y address.
MULTICAST_DST = -1


@dataclass(slots=True)
class Flit:
    """One network flit: routing fields + protocol fields + bookkeeping."""

    dst: int
    src: int
    ptype: PacketType
    subtype: int = 0
    seq: int = 0
    burst: int = 1
    data: int = 0
    #: MULTICAST destination bitmask (0 for every other packet type).
    dst_mask: int = 0
    #: End-to-end checksum trailer (reliable-delivery mode only; stamped at
    #: injection by the fault layer, -1 = unstamped).
    crc: int = -1
    #: Simulation bookkeeping (not wire bits).
    uid: int = field(default_factory=lambda: next(_flit_ids))
    injected_at: int = -1
    hops: int = 0
    deflections: int = 0

    def age_key(self) -> tuple[int, int]:
        """Sort key implementing oldest-first priority with a stable tie-break."""
        return (self.injected_at, self.uid)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        dst = f"mask={self.dst_mask:#x}" if self.dst < 0 else str(self.dst)
        return (
            f"<Flit#{self.uid} {self.ptype.name}/{self.subtype} "
            f"{self.src}->{dst} seq={self.seq} data={self.data:#x}>"
        )
