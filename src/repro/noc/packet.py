"""Bit-accurate three-level packet format (paper Fig. 5).

A MEDEA flit stacks three protocol levels:

* **network level** — validity bit plus X-Y destination, all the hot-potato
  switch ever looks at;
* **bridge level** — TYPE (3 bits), SUB-TYPE (2 bits) and SEQ-NUM (4 bits),
  consumed by the pif2NoC bridge and the MPMMU;
* **application level** — BURST-SIZE (2 bits), SRC-ID (4 bits) and a 32-bit
  DATA word, interpreted by software (eMPI) and the MPMMU protocol.

The simulator routes decoded :class:`~repro.noc.flit.Flit` records for
speed, but every field is range-checked against this layout at injection,
and :class:`FlitCodec` provides lossless encode/decode to a flat integer —
the representation an RTL implementation would put on the wires.  Tests
round-trip every flit type through the codec.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import PacketFormatError


class PacketType(enum.IntEnum):
    """The seven 3-bit packet types of Section II-D, plus MULTICAST.

    MULTICAST (the eighth, previously reserved, 3-bit code) is the
    hardware-collective extension: a message-class flit whose destination
    is a *bitmask* of nodes rather than one X-Y coordinate.  Switches
    replicate it toward child ports along a deterministic tree (see
    :func:`repro.noc.switch.route_node`); the per-tile DMA engine in
    :mod:`repro.dma` is the only producer.
    """

    SINGLE_READ = 0
    SINGLE_WRITE = 1
    BLOCK_READ = 2
    BLOCK_WRITE = 3
    LOCK = 4
    UNLOCK = 5
    MESSAGE = 6
    MULTICAST = 7

    @property
    def is_shared_memory(self) -> bool:
        return self < PacketType.MESSAGE


class SubType(enum.IntEnum):
    """2-bit SUB-TYPE field.

    For shared-memory types the values mean address/data/ack/nack; for
    MESSAGE flits the same 2-bit slot distinguishes generic data from
    request (control) packets — mirroring the paper, which overloads the
    field per TYPE.
    """

    ADDR = 0
    DATA = 1
    ACK = 2
    NACK = 3

    # MESSAGE-type aliases (same wire values, different interpretation).
    MSG_DATA = 1
    MSG_REQUEST = 0
    #: Retransmitted stream data (reliable-delivery mode only): carried in
    #: the otherwise-free MESSAGE/MULTICAST code 2 so receivers and fault
    #: statistics can tell replays from first transmissions.
    MSG_RETX = 2


@dataclass(frozen=True)
class FieldSpec:
    """A contiguous bit slice inside the flat flit word."""

    name: str
    width: int
    offset: int

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    def insert(self, word: int, value: int) -> int:
        if not (0 <= value <= self.mask):
            raise PacketFormatError(
                f"field {self.name}: value {value} does not fit in {self.width} bits"
            )
        return word | (value << self.offset)

    def extract(self, word: int) -> int:
        return (word >> self.offset) & self.mask


class FlitCodec:
    """Encode/decode flits to the flat wire format for a given network size.

    Field widths follow the paper: X/Y widths scale with the grid (2+2 bits
    for a 4x4 folded torus), TYPE=3, SUBTYPE=2, SEQNUM=4, BURST=2, SRCID=4,
    DATA=32.  The total must fit the configured flit width (64 in the
    reference implementation, leaving spare bits).  Passing ``min_mask_bits``
    guarantees that many low-order bits for the MULTICAST destination
    bitmask: when the spare bits of the base format are too few (more than
    12 nodes on the 64-bit flit), the header grows by whole bytes — the
    two-flit-header extension, modelled as one widened wire word.
    """

    def __init__(
        self,
        width: int,
        height: int,
        flit_width: int = 64,
        seq_bits: int = 4,
        burst_bits: int = 2,
        src_bits: int = 4,
        data_bits: int = 32,
        min_mask_bits: int = 0,
        crc_bits: int = 0,
    ) -> None:
        self.width = width
        self.height = height
        x_bits = max(1, (width - 1).bit_length())
        y_bits = max(1, (height - 1).bit_length())
        if (1 << src_bits) < width * height:
            raise PacketFormatError(
                f"src field of {src_bits} bits cannot name {width * height} nodes"
            )
        layout = [
            ("valid", 1),
            ("x", x_bits),
            ("y", y_bits),
            ("type", 3),
            ("subtype", 2),
            ("seq", seq_bits),
            ("burst", burst_bits),
            ("src", src_bits),
            ("data", data_bits),
        ]
        # Reliable-delivery extension: an end-to-end checksum trailer.
        # Like the multicast mask, it consumes spare low-order bits first
        # and widens the header by whole bytes when they run out (the same
        # "two-flit header" rule as min_mask_bits below).
        if crc_bits > 0:
            layout.append(("crc", crc_bits))
        self.fields: dict[str, FieldSpec] = {}
        # Pack from the MSB end down so 'valid' sits at the top, like Fig. 5.
        total = sum(width_ for _, width_ in layout)
        # The spare low-order bits (12 on the reference 64-bit flit) carry
        # the MULTICAST destination bitmask.  A network whose node count
        # exceeds the spare bits — or whose layout itself outgrows the base
        # width, as the reliable format's 16-bit SEQ plus CRC trailer does —
        # extends the header by whole bytes: the wire sends the extension
        # as a second header beat (the "two-flit header"); the codec models
        # the pair as one widened word.
        if flit_width - total < min_mask_bits:
            if min_mask_bits == 0 and crc_bits == 0 and seq_bits <= 4:
                # No extension asked for more room: the base layout simply
                # does not fit the configured width.
                raise PacketFormatError(
                    f"layout needs {total} bits but flit is "
                    f"{flit_width} bits wide"
                )
            flit_width = -(-(total + min_mask_bits) // 8) * 8
        self.flit_width = flit_width
        position = flit_width
        for name, bits in layout:
            position -= bits
            self.fields[name] = FieldSpec(name, bits, position)
        self.header_bits = total - data_bits
        self.payload_bits = data_bits
        self.max_seq = (1 << seq_bits) - 1
        self.max_burst = (1 << burst_bits) - 1
        self.crc_bits = crc_bits
        self.mask_bits = flit_width - total
        if self.mask_bits > 0:
            self.fields["mask"] = FieldSpec("mask", self.mask_bits, 0)

    # -- encode/decode -----------------------------------------------------------

    def encode(
        self,
        dst_x: int,
        dst_y: int,
        ptype: int,
        subtype: int,
        seq: int,
        burst: int,
        src: int,
        data: int,
        mask: int = 0,
        crc: int = 0,
    ) -> int:
        """Pack fields into the flat wire word (valid bit set)."""
        word = 0
        fields = self.fields
        word = fields["valid"].insert(word, 1)
        word = fields["x"].insert(word, dst_x)
        word = fields["y"].insert(word, dst_y)
        word = fields["type"].insert(word, ptype)
        word = fields["subtype"].insert(word, subtype)
        word = fields["seq"].insert(word, seq)
        word = fields["burst"].insert(word, burst)
        word = fields["src"].insert(word, src)
        word = fields["data"].insert(word, data)
        if self.crc_bits > 0:
            word = fields["crc"].insert(word, crc)
        if mask:
            if self.mask_bits <= 0:
                raise PacketFormatError(
                    "flit layout has no spare bits for a multicast mask"
                )
            word = fields["mask"].insert(word, mask)
        return word

    def decode(self, word: int) -> dict[str, int]:
        """Unpack a wire word into a field dict (including 'valid')."""
        if word < 0 or word >= (1 << self.flit_width):
            raise PacketFormatError(f"word {word:#x} exceeds flit width {self.flit_width}")
        return {name: spec.extract(word) for name, spec in self.fields.items()}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(f"{n}:{s.width}" for n, s in self.fields.items())
        return f"<FlitCodec {self.flit_width}b [{parts}]>"
