"""The clocked NoC fabric: link registers, injection and ejection ports.

The fabric is a single :class:`~repro.kernel.component.Component` stepped
once per cycle while any flit is in flight or any injection slot is
pending.  All switches route combinationally against the *previous* cycle's
link registers (two-phase update), so results are independent of node
iteration order — matching the synchronous RTL the paper pairs with its
SystemC model.

Timing contract (one hop = one cycle):

* a flit accepted from an injection slot at cycle *c* is latched in the
  neighbor's input register and visible there at *c+1*;
* ejection pushes into the node's RX queue during the fabric step, and the
  owning node (stepped after the fabric in the same cycle — registration
  order) may consume it immediately, modelling the direct TIE connection
  into the processor register file.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.errors import ProtocolError, SimulationError
from repro.kernel.component import Component
from repro.kernel.fifo import Fifo
from repro.kernel.stats import LatencyStat
from repro.kernel.trace import Tracer
from repro.noc.flit import Flit
from repro.noc.packet import FlitCodec, PacketType
from repro.noc.switch import RoutingOutcome, route_node
from repro.noc.topology import Topology


class InjectionPort:
    """Single-register injection slot between a node and its switch.

    The node's arbiter writes one flit at a time with :meth:`try_inject`;
    the fabric drains the slot when routing permits (an output port must be
    free, the deflection-network injection rule).
    """

    __slots__ = ("node", "fabric", "pending", "stalled_cycles", "injected")

    def __init__(self, node: int, fabric: "NocFabric") -> None:
        self.node = node
        self.fabric = fabric
        self.pending: Flit | None = None
        self.stalled_cycles = 0
        self.injected = 0

    @property
    def busy(self) -> bool:
        return self.pending is not None

    def try_inject(self, flit: Flit) -> bool:
        """Offer a flit to the network; False when the slot is still busy."""
        if self.pending is not None:
            return False
        fabric = self.fabric
        if fabric.faults is not None:
            fabric.faults.stamp(flit)
        # Inline the common validate_flit fast path; the full check (with
        # its error message / strict wire encoding) runs only when needed.
        n = fabric.topology.n_nodes
        if fabric.strict_encoding or not (
            0 <= flit.dst < n and 0 <= flit.src < n
        ):
            fabric.validate_flit(flit)
        self.pending = flit
        fabric._work.add(self.node)
        fabric._flit_count += 1
        fabric.wake()
        return True


class EjectionPort:
    """RX side of a node: flits leave the network into this queue.

    The queue is backed by local memory in the real design (the TIE
    interface scatters arrivals straight into the processor data RAM), so
    it is modelled unbounded; the network still ejects at most
    ``eject_capacity`` flits per cycle.
    """

    __slots__ = ("node", "queue", "owner")

    def __init__(self, node: int) -> None:
        self.node = node
        self.queue: Fifo[Flit] = Fifo(capacity=None, name=f"eject[{node}]")
        self.owner: Component | None = None

    def deliver(self, flit: Flit) -> None:
        self.queue.push(flit)
        if self.owner is not None:
            self.owner.wake()


class NodePorts:
    """The pair of ports a node uses to talk to the NoC."""

    __slots__ = ("node", "inject", "eject")

    def __init__(self, node: int, inject: InjectionPort, eject: EjectionPort):
        self.node = node
        self.inject = inject
        self.eject = eject


class SpatialCounters:
    """Per-link / per-switch matrices for the telemetry heatmap view.

    Opt-in (:meth:`NocFabric.enable_spatial`): when absent the fabric's
    hot path pays only an is-it-None check, preserving bit-identical
    goldens and PR-1's allocation-free step.
    """

    __slots__ = ("link_transits", "switch_deflections", "node_ejects")

    def __init__(self, n_nodes: int, n_ports: int = 4) -> None:
        #: ``[receiver][in_port]`` -> flits latched off that input link.
        self.link_transits = [[0] * n_ports for _ in range(n_nodes)]
        self.switch_deflections = [0] * n_nodes
        self.node_ejects = [0] * n_nodes


class NocFabric(Component):
    """All switches and links of the network, stepped as one component."""

    def __init__(
        self,
        topology: Topology,
        eject_capacity: int = 1,
        strict_encoding: bool = False,
        tracer: Tracer | None = None,
        faults=None,
    ) -> None:
        super().__init__("noc")
        self.topology = topology
        self.eject_capacity = eject_capacity
        self.strict_encoding = strict_encoding
        #: Optional :class:`repro.faults.FaultInjector` — the single hook
        #: behind which every fault-layer branch hides; None keeps the
        #: fault-free hot path allocation-free and bit-identical.
        self.faults = faults
        # Every node must be nameable in a multicast mask; on networks
        # bigger than the base format's spare bits the codec widens the
        # header (the two-flit-header extension in packet.py).  With the
        # fault layer active the wire format also carries the reliable-
        # delivery extension: a 16-bit sequence number (so retransmits
        # place exactly, with duplicates detected rather than aliased)
        # and an 8-bit end-to-end checksum trailer, both absorbed by the
        # same whole-byte widening rule as the multicast mask.
        self.codec = FlitCodec(
            topology.width, topology.height,
            min_mask_bits=topology.n_nodes,
            seq_bits=16 if faults is not None else 4,
            crc_bits=8 if faults is not None else 0,
            # The base format's 4 source bits cover up to 16 tiles; larger
            # coordinate planes (chiplet systems address hundreds) widen
            # the field, absorbed by the whole-byte widening rule.
            src_bits=max(
                4, (topology.width * topology.height - 1).bit_length()
            ),
        )
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        n = topology.n_nodes
        n_ports = topology.max_ports
        self._n_ports = n_ports
        # regs[node][in_port] = flit latched on that input link.
        self.regs: list[list[Flit | None]] = [
            [None] * n_ports for _ in range(n)
        ]
        # Non-uniform links (latency > 1 or serialization > 1, the
        # inter-chiplet case) deliver through a timestamped heap instead
        # of the commit phase: (due_cycle, seq, node, in_port, flit).
        # On uniform-link topologies (every legacy grid) the heap stays
        # empty and the hot path is untouched.
        self._uniform_links = topology.uniform_links
        self._delayed: list[tuple[int, int, int, int, Flit]] = []
        self._delay_seq = 0
        # Wire occupancy for serializing links, indexed node*n_ports+port:
        # the cycle the wire frees up (a narrower off-die link holds each
        # flit for `serialization` cycles; followers queue behind).
        self._wire_free = (
            None if self._uniform_links else [0] * (n * n_ports)
        )
        # Incremental worklist: nodes with a latched flit or pending
        # injection.  Maintained by try_inject and the commit phase so a
        # step never scans the whole fabric.
        self._work: set[int] = set()
        # Running count of flits in the network (regs + injection slots):
        # +1 on accepted injection, -1 on ejection.
        self._flit_count = 0
        self._moves: list[tuple[int, int, Flit]] = []
        self._scratch = RoutingOutcome(n_ports=n_ports)
        self.ports: list[NodePorts] = [
            NodePorts(node, InjectionPort(node, self), EjectionPort(node))
            for node in range(n)
        ]
        self.latency = LatencyStat("noc_latency")
        #: Optional per-link/per-switch matrices (telemetry spatial view).
        self._spatial: SpatialCounters | None = None

    # -- node-facing API -----------------------------------------------------

    def ports_of(self, node: int) -> NodePorts:
        return self.ports[node]

    def validate_flit(self, flit: Flit) -> None:
        """Range-check (and optionally wire-encode) a flit at injection."""
        n = self.topology.n_nodes
        if flit.dst < 0:
            # Mask-routed multicast: the bitmask replaces the X-Y address.
            if flit.ptype is not PacketType.MULTICAST:
                raise ProtocolError(f"negative dst on non-multicast {flit!r}")
            mask = flit.dst_mask
            if not (0 < mask < (1 << n)):
                raise ProtocolError(
                    f"multicast mask out of range for {n} nodes: {flit!r}"
                )
            if mask & (1 << flit.src):
                raise ProtocolError(
                    f"multicast mask includes the source node: {flit!r}"
                )
            if not (0 <= flit.src < n):
                raise ProtocolError(f"flit endpoints out of range: {flit!r}")
            if self.strict_encoding:
                self.codec.encode(
                    0, 0, int(flit.ptype), flit.subtype, flit.seq,
                    min(flit.burst, self.codec.max_burst), flit.src, flit.data,
                    mask=mask, crc=max(flit.crc, 0),
                )
            return
        if not (0 <= flit.dst < n and 0 <= flit.src < n):
            raise ProtocolError(f"flit endpoints out of range: {flit!r}")
        if self.strict_encoding:
            x, y = self.topology.coords_of(flit.dst)
            self.codec.encode(
                x, y, int(flit.ptype), flit.subtype, flit.seq,
                min(flit.burst, self.codec.max_burst), flit.src, flit.data,
                crc=max(flit.crc, 0),
            )

    # -- clocked behaviour ------------------------------------------------------

    def step(self, cycle: int) -> None:
        work = self._work
        regs = self.regs
        spatial = self._spatial
        delayed = self._delayed
        if delayed and delayed[0][0] <= cycle:
            # Slow-link arrivals latch at the start of their due cycle —
            # the moment the commit phase of cycle-1 would have latched a
            # single-cycle link.  A held register (stalled receiver)
            # skids the wire one cycle rather than dropping.
            while delayed and delayed[0][0] <= cycle:
                __, seq, node, in_port, flit = heappop(delayed)
                if regs[node][in_port] is None:
                    regs[node][in_port] = flit
                    work.add(node)
                    if spatial is not None:
                        spatial.link_transits[node][in_port] += 1
                else:
                    # due becomes cycle+1 (> cycle), so this terminates.
                    heappush(delayed, (cycle + 1, seq, node, in_port, flit))
        if not work:
            if delayed:
                self.sleep(until=delayed[0][0])
            else:
                self.sleep()
            return
        if len(work) == 1:
            work_nodes = list(work)
        else:
            work_nodes = sorted(work)
        work.clear()  # re-populated below by the commit phase / stalls
        moves = self._moves
        del moves[:]
        topo = self.topology
        ports = self.ports
        neighbor_table = topo.neighbor_table
        reverse_table = topo.reverse_port_table
        uniform_links = self._uniform_links
        latency_table = topo.link_latency_table
        ser_table = topo.link_ser_table
        wire_free = self._wire_free
        n_ports = self._n_ports
        port_range = range(n_ports)
        eject_capacity = self.eject_capacity
        scratch = self._scratch
        faults = self.faults
        masks_active = False
        if faults is not None:
            faults.advance(cycle)
            masks_active = faults.masks_active
        # Per-step counter accumulation; flushed once into the CounterSet.
        flits_injected = injection_stalls = deflections = eject_overflows = 0
        flits_ejected = flit_hops = 0
        for node in work_nodes:
            if masks_active and faults.stalled(node):
                # A stalled switch holds its input registers latched and
                # neither routes nor accepts anything; neighbours already
                # exclude it from their output masks.
                work.add(node)
                continue
            row = regs[node]
            port = ports[node]
            inject = port.inject.pending

            # A self-addressed flit bypasses the switch entirely.
            if inject is not None and inject.dst == node:
                inject.injected_at = cycle
                port.inject.pending = None
                port.inject.injected += 1
                flits_injected += 1
                flits_ejected += 1
                flit_hops += inject.hops
                self._eject(port, inject, cycle, zero_hop=True)
                inject = None
            elif inject is not None and inject.dst < 0:
                # Stamp mask-routed injections *before* routing: the
                # switch may replicate them right here, and the copies
                # inherit injected_at (age priority + latency baseline).
                # A stalled injection is simply re-stamped next cycle.
                inject.injected_at = cycle

            # The register row is handed to the router as-is (it skips
            # idle links); clear it only after routing has read it.
            outcome = route_node(
                node, row, inject, topo, eject_capacity, out=scratch,
                port_mask=faults.out_mask(node) if masks_active else -1,
                productive=(
                    faults.productive_override if masks_active else None
                ),
            )
            for index in port_range:
                row[index] = None
            for flit in outcome.ejected:
                flits_ejected += 1
                flit_hops += flit.hops
                self._eject(port, flit, cycle)
            if outcome.flit_copies:
                # Multicast replication grew the in-network population.
                self._flit_count += outcome.flit_copies
                self.stats.inc("mcast_copies", outcome.flit_copies)
            if inject is not None:
                if outcome.injected:
                    inject.injected_at = cycle
                    port.inject.pending = None
                    port.inject.injected += 1
                    flits_injected += 1
                else:
                    port.inject.stalled_cycles += 1
                    injection_stalls += 1
                    work.add(node)  # the slot retries next cycle
            deflections += outcome.deflections
            if spatial is not None and outcome.deflections:
                spatial.switch_deflections[node] += outcome.deflections
            eject_overflows += outcome.eject_overflow
            outputs = outcome.outputs
            neighbor_row = neighbor_table[node]
            reverse_row = reverse_table[node]
            for direction in port_range:
                flit = outputs[direction]
                if flit is not None:
                    if faults is not None and not faults.on_link(
                        node, direction, flit, cycle
                    ):
                        # Dropped on the wire: never latched, gone from
                        # the in-network population.
                        self._flit_count -= 1
                        continue
                    neighbor = neighbor_row[direction]
                    assert neighbor >= 0, "routed to a missing link"
                    flit.hops += 1
                    if uniform_links or (
                        latency_table[node][direction] == 1
                        and ser_table[node][direction] == 1
                    ):
                        moves.append((neighbor, reverse_row[direction], flit))
                    else:
                        # Slow or narrow wire: the flit is in flight for
                        # `latency` cycles and occupies the serializing
                        # link for `ser`; followers queue behind.
                        wire = node * n_ports + direction
                        start = wire_free[wire]
                        if start < cycle:
                            start = cycle
                        wire_free[wire] = start + ser_table[node][direction]
                        self._delay_seq += 1
                        heappush(delayed, (
                            start + latency_table[node][direction],
                            self._delay_seq, neighbor,
                            reverse_row[direction], flit,
                        ))
        # Commit phase: latch flits into next cycle's input registers.
        for neighbor, in_dir, flit in moves:
            slot = regs[neighbor][in_dir]
            if slot is not None:
                raise SimulationError(
                    f"link register collision at node {neighbor} dir {in_dir}"
                )
            regs[neighbor][in_dir] = flit
            work.add(neighbor)
        if spatial is not None and moves:
            transits = spatial.link_transits
            for neighbor, in_dir, __ in moves:
                transits[neighbor][in_dir] += 1
        inc = self.stats.inc
        if flits_injected:
            inc("flits_injected", flits_injected)
        if injection_stalls:
            inc("injection_stalls", injection_stalls)
        if deflections:
            inc("deflections", deflections)
        if eject_overflows:
            inc("eject_overflows", eject_overflows)
        if flits_ejected:
            inc("flits_ejected", flits_ejected)
            inc("flit_hops", flit_hops)
        if not work:
            if delayed:
                self.sleep(until=delayed[0][0])
            else:
                self.sleep()

    def _eject(
        self, port: NodePorts, flit: Flit, cycle: int, zero_hop: bool = False
    ) -> None:
        if self.faults is not None and not self.faults.check_eject(
            flit, port.node, cycle
        ):
            # Checksum mismatch: the ejection port discards the flit, so
            # corruption degenerates to loss and the NACK path repairs it.
            self._flit_count -= 1
            return
        latency = 0 if zero_hop else cycle - flit.injected_at + 1
        self.latency.record(latency)
        self._flit_count -= 1
        if self._spatial is not None:
            self._spatial.node_ejects[port.node] += 1
        if self.tracer.enabled:
            self.tracer.emit(
                cycle, "noc", "eject",
                node=port.node, uid=flit.uid, ptype=flit.ptype.name,
                latency=latency,
            )
        port.eject.deliver(flit)

    # -- telemetry spatial view ----------------------------------------------

    def enable_spatial(self) -> SpatialCounters:
        """Start keeping per-link/per-switch matrices (telemetry only)."""
        if self._spatial is None:
            self._spatial = SpatialCounters(
                self.topology.n_nodes, self.topology.max_ports
            )
        return self._spatial

    def spatial_values(self) -> dict[str, int]:
        """Flat hierarchical counters for the metric registry.

        Keys name physical elements by topology label —
        ``link.(1,1)->(1,2).transits`` and ``switch.(1,1).deflections``
        on a grid, ``link.(io)->(c1:0,0).transits`` on a chiplet system.
        Only elements that have moved appear, keeping sample rows sparse.
        """
        spatial = self._spatial
        if spatial is None:
            return {}
        topo = self.topology
        label_of = topo.label_of
        neighbor_table = topo.neighbor_table
        values: dict[str, int] = {}
        for receiver in range(topo.n_nodes):
            here = label_of(receiver)
            transits = spatial.link_transits[receiver]
            for in_dir in range(topo.max_ports):
                src = neighbor_table[receiver][in_dir]
                if transits[in_dir] and src >= 0:
                    values[
                        f"link.({label_of(src)})->({here}).transits"
                    ] = transits[in_dir]
            if spatial.switch_deflections[receiver]:
                values[f"switch.({here}).deflections"] = (
                    spatial.switch_deflections[receiver]
                )
            if spatial.node_ejects[receiver]:
                values[f"switch.({here}).ejects"] = (
                    spatial.node_ejects[receiver]
                )
            stalled = self.ports[receiver].inject.stalled_cycles
            if stalled:
                values[f"switch.({here}).inject_stalls"] = stalled
        return values

    def spatial_dict(self) -> dict | None:
        """Matrix-shaped JSON dump of the spatial view (None when off).

        Matrices are row-major ``[y][x]``; links are listed with explicit
        src/dst coordinates so torus wrap links need no special casing.
        """
        spatial = self._spatial
        if spatial is None:
            return None
        topo = self.topology
        coords_of = topo.coords_of
        neighbor_table = topo.neighbor_table
        width, height = topo.width, topo.height

        def matrix(per_node: list[int]) -> list[list[int]]:
            rows = [[0] * width for __ in range(height)]
            for node, value in enumerate(per_node):
                x, y = coords_of(node)
                rows[y][x] = value
            return rows

        panels = topo.spatial_panels()
        links = []
        for receiver in range(topo.n_nodes):
            for in_dir in range(topo.max_ports):
                count = spatial.link_transits[receiver][in_dir]
                src = neighbor_table[receiver][in_dir]
                if count and src >= 0:
                    link = {
                        "src": list(coords_of(src)),
                        "dst": list(coords_of(receiver)),
                        "transits": count,
                    }
                    if panels is not None:
                        link["src_node"] = src
                        link["dst_node"] = receiver
                    links.append(link)
        result = {
            "width": width,
            "height": height,
            "links": links,
            "deflections": matrix(spatial.switch_deflections),
            "ejects": matrix(spatial.node_ejects),
            "inject_stalls": matrix(
                [port.inject.stalled_cycles for port in self.ports]
            ),
            "injected": matrix(
                [port.inject.injected for port in self.ports]
            ),
        }
        if panels is not None:
            # Hierarchical topologies render as per-chiplet panels; the
            # flat matrices above remain for schema compatibility (one
            # row of n_nodes values on a chiplet system).
            result["panels"] = panels
            result["labels"] = [
                topo.label_of(node) for node in range(topo.n_nodes)
            ]
        return result

    # -- introspection -------------------------------------------------------------

    @property
    def flits_in_network(self) -> int:
        return self._flit_count

    def describe_state(self) -> str:
        return (
            f"{'active' if self.active else 'idle'}, "
            f"{self.flits_in_network} flits in network"
        )
