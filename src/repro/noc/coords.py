"""Direction constants and coordinate arithmetic for 2-D on-chip networks.

Directions are plain ints (not an Enum) because they index hot per-cycle
arrays in the router; the names exist for readability at call sites.
"""

from __future__ import annotations

NORTH = 0
EAST = 1
SOUTH = 2
WEST = 3

#: All directions in deterministic priority order for free-port scans.
ALL_DIRECTIONS = (NORTH, EAST, SOUTH, WEST)

DIRECTION_NAMES = ("N", "E", "S", "W")

#: Coordinate deltas; +x is EAST, +y is SOUTH (row-major screen order).
DELTA_X = (0, 1, 0, -1)
DELTA_Y = (-1, 0, 1, 0)

#: OPPOSITE[d] is the port on the receiving switch for a flit sent out of d.
OPPOSITE = (SOUTH, WEST, NORTH, EAST)


def signed_wrap_delta(src: int, dst: int, size: int) -> int:
    """Shortest signed displacement from ``src`` to ``dst`` on a ring.

    The result lies in ``[-size//2, size//2]``; for even ``size`` the
    positive direction is chosen on an exact tie (deterministic).
    """
    delta = (dst - src) % size
    if delta > size // 2:
        delta -= size
    return delta
