"""One deflection-routing switch, as a pure combinational function.

Hot-potato ("deflection") routing never buffers more than the incoming
flits: every flit present at a switch input is assigned to *some* output
port every cycle.  When its productive port is taken by an older flit it is
deflected to any free port and tries again from wherever it lands.  This
gives minimal storage, no back-pressure and deadlock freedom (paper
Section II-A); livelock is avoided in practice by oldest-first priority,
which the property tests exercise under saturating load.

Keeping the per-switch routing a pure function of (inputs, pending
injection) makes the fabric's two-phase update order-independent and the
routing unit-testable in isolation.
"""

from __future__ import annotations

from repro.noc.flit import Flit
from repro.noc.topology import Topology


class RoutingOutcome:
    """Result of routing one switch for one cycle."""

    __slots__ = ("ejected", "outputs", "injected", "deflections", "eject_overflow")

    def __init__(
        self,
        ejected: list[Flit],
        outputs: list[Flit | None],
        injected: bool,
        deflections: int,
        eject_overflow: int,
    ) -> None:
        self.ejected = ejected
        self.outputs = outputs  # indexed by direction, None = idle port
        self.injected = injected
        self.deflections = deflections
        self.eject_overflow = eject_overflow


def route_node(
    node: int,
    inputs: list[Flit],
    inject: Flit | None,
    topology: Topology,
    eject_capacity: int = 1,
) -> RoutingOutcome:
    """Route all flits present at ``node`` for this cycle.

    ``inputs`` are the flits latched in this switch's input registers (at
    most one per link).  ``inject`` is the locally pending flit, accepted
    only if an output port remains free after all transit flits are placed
    (local traffic has the lowest priority, the standard deflection rule).

    Up to ``eject_capacity`` flits destined for this node leave through the
    local port, oldest first; any excess arrival is deflected back into the
    network and will retry — the hot-potato answer to an ejection-port
    conflict.
    """
    ports = topology.ports_of(node)
    n_ports = len(ports)
    assert len(inputs) <= n_ports, "more input flits than links"

    arrived = [flit for flit in inputs if flit.dst == node]
    transit = [flit for flit in inputs if flit.dst != node]

    arrived.sort(key=Flit.age_key)
    ejected = arrived[:eject_capacity]
    recirculating = arrived[eject_capacity:]
    eject_overflow = len(recirculating)

    outputs: list[Flit | None] = [None, None, None, None]
    deflections = 0
    free = set(ports)

    # Oldest flit gets first pick of ports: the practical livelock guard.
    contenders = sorted(transit + recirculating, key=Flit.age_key)
    for flit in contenders:
        placed = False
        for direction in topology.productive_directions(node, flit.dst):
            if direction in free:
                outputs[direction] = flit
                free.discard(direction)
                placed = True
                break
        if not placed:
            # Deflect: any free port, deterministic scan order.
            for direction in ports:
                if direction in free:
                    outputs[direction] = flit
                    free.discard(direction)
                    placed = True
                    flit.deflections += 1
                    deflections += 1
                    break
        assert placed, "deflection routing must always place a transit flit"

    injected = False
    if inject is not None and free:
        for direction in topology.productive_directions(node, inject.dst):
            if direction in free:
                outputs[direction] = inject
                free.discard(direction)
                injected = True
                break
        if not injected:
            direction = min(free)
            outputs[direction] = inject
            free.discard(direction)
            injected = True

    return RoutingOutcome(ejected, outputs, injected, deflections, eject_overflow)
