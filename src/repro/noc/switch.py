"""One deflection-routing switch, as a pure combinational function.

Hot-potato ("deflection") routing never buffers more than the incoming
flits: every flit present at a switch input is assigned to *some* output
port every cycle.  When its productive port is taken by an older flit it is
deflected to any free port and tries again from wherever it lands.  This
gives minimal storage, no back-pressure and deadlock freedom (paper
Section II-A); livelock is avoided in practice by oldest-first priority,
which the property tests exercise under saturating load.

Keeping the per-switch routing a pure function of (inputs, pending
injection) makes the fabric's two-phase update order-independent and the
routing unit-testable in isolation.

This function sits on the per-flit hot path of every simulated cycle, so
it is written to avoid allocation: free ports are a bitmask rather than a
set, sorting is skipped when at most one flit contends, the topology's
precomputed tables are indexed directly, and the caller may pass a
reusable :class:`RoutingOutcome` scratch structure via ``out``.

**Multicast replication.**  A MULTICAST flit (``dst < 0``) carries a
destination bitmask and is routed along the deterministic dimension-order
tree: at every switch the remaining mask is partitioned by each
destination's *preferred* productive direction, and the flit is replicated
into one copy per branch whose port is free.  Replication is opportunistic
— a branch whose port is taken (or that would starve a younger multicast
flit of its guaranteed port) is merged back into the first placed copy and
re-splits at a later switch, so a multicast flit occupies at least one and
at most ``#branches`` output ports and the deflection invariant (every
transit flit is placed every cycle) is preserved.  Destinations whose bit
matches the local node eject a copy through the normal local port, bounded
by the same ``eject_capacity``.  Unicast traffic is routed exactly as
before — multicast flits take the lowest transit priority — which the
golden-equivalence harness in ``tests/noc/test_switch_golden.py`` checks
flit-for-flit.
"""

from __future__ import annotations

from operator import attrgetter

from repro.noc.flit import Flit
from repro.noc.topology import Topology

#: Oldest-first priority with a stable tie-break, as a C-level sort key
#: (equivalent to :meth:`Flit.age_key`, without the per-flit method call).
_AGE_KEY = attrgetter("injected_at", "uid")


class RoutingOutcome:
    """Result of routing one switch for one cycle.

    May be reused across calls as a scratch structure (see
    :func:`route_node`'s ``out`` parameter); ``ejected`` and ``outputs``
    are then overwritten in place.
    """

    __slots__ = ("ejected", "outputs", "injected", "deflections",
                 "eject_overflow", "flit_copies")

    def __init__(
        self,
        ejected: list[Flit] | None = None,
        outputs: list[Flit | None] | None = None,
        injected: bool = False,
        deflections: int = 0,
        eject_overflow: int = 0,
        flit_copies: int = 0,
        n_ports: int = 4,
    ) -> None:
        self.ejected = [] if ejected is None else ejected
        # outputs is indexed by output port, None = idle port.
        self.outputs = [None] * n_ports if outputs is None else outputs
        self.injected = injected
        self.deflections = deflections
        self.eject_overflow = eject_overflow
        #: Net new flits created by multicast replication this cycle (the
        #: fabric adds this to its running in-network flit count).
        self.flit_copies = flit_copies


def route_node(
    node: int,
    inputs: list[Flit | None],
    inject: Flit | None,
    topology: Topology,
    eject_capacity: int = 1,
    out: RoutingOutcome | None = None,
    port_mask: int = -1,
    productive: list[tuple[int, ...]] | None = None,
) -> RoutingOutcome:
    """Route all flits present at ``node`` for this cycle.

    ``inputs`` are the flits latched in this switch's input registers (at
    most one per link).  ``inject`` is the locally pending flit, accepted
    only if an output port remains free after all transit flits are placed
    (local traffic has the lowest priority, the standard deflection rule).

    ``port_mask`` (default -1 = all physical ports) overrides the usable
    output ports — the fault layer's hook for killed links and stalled
    neighbours.  A masked port stops accepting *new* traffic immediately;
    on the activation cycle the node may still hold more transit flits
    than live outputs, and the excess drains across a masked-but-present
    wire once (see the spill paths below), preserving the deflection
    invariant without dropping anything.

    ``productive`` (default None = the topology's table) substitutes a
    mask-aware productive-direction table — the fault layer's rerouted
    tables after a permanent link kill, without which X-Y preference can
    steer flits into a dead-end next to the dead link forever.

    Up to ``eject_capacity`` flits destined for this node leave through the
    local port, oldest first; any excess arrival is deflected back into the
    network and will retry — the hot-potato answer to an ejection-port
    conflict.

    When ``out`` is given, its lists are recycled and it is returned;
    otherwise a fresh :class:`RoutingOutcome` is allocated.  ``inputs``
    may contain ``None`` entries (idle links), which lets the fabric pass
    its register row without building a filtered list; the caller must
    never present more flits than the node has links.
    """
    if out is None:
        out = RoutingOutcome(n_ports=topology.max_ports)
        ejected = out.ejected
        outputs = out.outputs
    else:
        ejected = out.ejected
        ejected.clear()
        outputs = out.outputs
        for index in range(len(outputs)):
            outputs[index] = None
        out.injected = False
        out.flit_copies = 0

    arrived: list[Flit] | None = None
    contenders: list[Flit] | None = None
    mcast: list[Flit] | None = None
    for flit in inputs:
        if flit is None:
            continue
        dst = flit.dst
        if dst == node:
            if arrived is None:
                arrived = [flit]
            else:
                arrived.append(flit)
        elif dst >= 0:
            if contenders is None:
                contenders = [flit]
            else:
                contenders.append(flit)
        else:  # mask-routed MULTICAST flit
            if mcast is None:
                mcast = [flit]
            else:
                mcast.append(flit)

    eject_overflow = 0
    if arrived is not None:
        if len(arrived) > 1:
            arrived.sort(key=_AGE_KEY)
        ejected.extend(arrived[:eject_capacity])
        recirculating = arrived[eject_capacity:]
        if recirculating:
            eject_overflow = len(recirculating)
            if contenders is None:
                contenders = recirculating
            else:
                contenders.extend(recirculating)
    out.eject_overflow = eject_overflow

    free_mask = topology.port_mask_table[node] if port_mask < 0 else port_mask
    if productive is None:
        productive = topology.productive_table
    base = node * topology.n_nodes
    deflections = 0

    if contenders is not None:
        # Oldest flit gets first pick of ports: the practical livelock guard.
        if len(contenders) > 1:
            contenders.sort(key=_AGE_KEY)
        ports = topology.ports_table[node]
        for flit in contenders:
            placed = False
            for direction in productive[base + flit.dst]:
                bit = 1 << direction
                if free_mask & bit:
                    outputs[direction] = flit
                    free_mask ^= bit
                    placed = True
                    break
            if not placed:
                # Deflect: any free port, deterministic scan order.
                for direction in ports:
                    bit = 1 << direction
                    if free_mask & bit:
                        outputs[direction] = flit
                        free_mask ^= bit
                        placed = True
                        flit.deflections += 1
                        deflections += 1
                        break
            if not placed and port_mask >= 0:
                # Fault masks shrink output capacity one cycle before the
                # senders' masks throttle arrivals, so a link-kill or
                # stall activation cycle can present more transit flits
                # than live outputs.  Drain the excess across a masked but
                # physically present wire (the dying link delivers its
                # in-flight traffic; a stalled neighbour latches and
                # holds it).
                for direction in ports:
                    if outputs[direction] is None:
                        outputs[direction] = flit
                        placed = True
                        flit.deflections += 1
                        deflections += 1
                        break
            assert placed, "deflection routing must always place a transit flit"
    out.deflections = deflections

    if mcast is not None:
        free_mask = _route_multicast(
            node, mcast, free_mask, eject_capacity - len(ejected),
            topology, out, spill=port_mask >= 0, productive=productive,
        )

    if inject is not None and free_mask:
        if inject.dst < 0:
            # A pending MULTICAST injection takes whatever ports the
            # transit traffic left over — any free port when no branch
            # port is available, like the unicast injection rule (and
            # like it, without counting a deflection); with free_mask
            # zero the slot simply retries next cycle.
            out.injected = _place_multicast(
                node, inject, free_mask, 0, topology, out, must_place=False,
                productive=productive,
            )[1]
            return out
        injected = False
        for direction in productive[base + inject.dst]:
            bit = 1 << direction
            if free_mask & bit:
                outputs[direction] = inject
                injected = True
                break
        if not injected:
            # Lowest free direction index, matching min() over the old set.
            direction = (free_mask & -free_mask).bit_length() - 1
            outputs[direction] = inject
        out.injected = True

    return out


def _copy_flit(flit: Flit, dst: int, dst_mask: int) -> Flit:
    """A replica of ``flit`` (fresh uid, same age/protocol fields)."""
    return Flit(
        dst=dst,
        src=flit.src,
        ptype=flit.ptype,
        subtype=flit.subtype,
        seq=flit.seq,
        burst=flit.burst,
        data=flit.data,
        dst_mask=dst_mask,
        crc=flit.crc,
        injected_at=flit.injected_at,
        hops=flit.hops,
        deflections=flit.deflections,
    )


def _route_multicast(
    node: int,
    mcast: list[Flit],
    free_mask: int,
    eject_budget: int,
    topology: Topology,
    out: RoutingOutcome,
    spill: bool = False,
    productive: list[tuple[int, ...]] | None = None,
) -> int:
    """Place every transit MULTICAST flit; returns the updated free mask.

    Multicast flits have the lowest transit priority (unicast contenders
    were placed first), are processed oldest first among themselves, and
    each is guaranteed one output port by the deflection invariant; extra
    branch splits only consume ports that no younger multicast flit still
    needs (``reserve``).
    """
    if len(mcast) > 1:
        mcast.sort(key=_AGE_KEY)
    for index, flit in enumerate(mcast):
        reserve = len(mcast) - index - 1
        if flit.dst_mask & (1 << node):
            if eject_budget > 0:
                eject_budget -= 1
                remaining = flit.dst_mask & ~(1 << node)
                if remaining == 0:
                    # Last destination: the flit itself leaves the network.
                    flit.dst = node
                    flit.dst_mask = 0
                    out.ejected.append(flit)
                    continue
                copy = _copy_flit(flit, dst=node, dst_mask=1 << node)
                out.flit_copies += 1
                out.ejected.append(copy)
                flit.dst_mask = remaining
            else:
                # Ejection port saturated: keep the local bit set so the
                # flit recirculates and retries — the hot-potato answer.
                out.eject_overflow += 1
        free_mask, placed = _place_multicast(
            node, flit, free_mask, reserve, topology, out, must_place=True,
            spill=spill, productive=productive,
        )
        assert placed, "multicast transit flit must always find a port"
    return free_mask


def _place_multicast(
    node: int,
    flit: Flit,
    free_mask: int,
    reserve: int,
    topology: Topology,
    out: RoutingOutcome,
    must_place: bool,
    spill: bool = False,
    productive: list[tuple[int, ...]] | None = None,
) -> tuple[int, bool]:
    """Replicate one multicast flit toward its tree branches.

    Partitions the flit's remaining mask by each destination's preferred
    productive direction, places one copy per branch whose port is free
    (keeping ``reserve`` ports for later flits), merges unplaceable
    branches into the first placed copy, and deflects the whole flit when
    no branch port is free.  Returns ``(free_mask, placed)``.
    """
    if productive is None:
        productive = topology.productive_table
    base = node * topology.n_nodes
    local_bit = (1 << node) & flit.dst_mask  # deferred local delivery
    groups = [0] * len(out.outputs)
    m = flit.dst_mask & ~local_bit
    while m:
        bit = m & -m
        m ^= bit
        dirs = productive[base + (bit.bit_length() - 1)]
        if dirs:
            groups[dirs[0]] |= bit
        else:
            # Unreachable under a fault-rerouted table (partitioned
            # network): keep the bit on the flit; it rides along until
            # the watchdog reports the partition.
            local_bit |= bit
    outputs = out.outputs
    free_count = free_mask.bit_count()
    first_copy: Flit | None = None
    deferred = local_bit
    # An extra branch copy may take a port only while the ports left
    # afterwards cover every younger multicast flit's guaranteed placement
    # plus the topology's split slack (grids keep one spare port for local
    # injection; a chiplet hub needs the exact bound — see
    # ``Topology.mcast_split_slack``).
    needed = reserve + topology.mcast_split_slack
    for direction in range(len(groups)):
        branch = groups[direction]
        if not branch:
            continue
        bit = 1 << direction
        if free_mask & bit and (first_copy is None or free_count > needed):
            if first_copy is None:
                flit.dst_mask = branch
                outputs[direction] = flit
                first_copy = flit
            else:
                copy = _copy_flit(flit, dst=flit.dst, dst_mask=branch)
                out.flit_copies += 1
                outputs[direction] = copy
            free_mask ^= bit
            free_count -= 1
        else:
            deferred |= branch
    if first_copy is not None:
        if deferred:
            first_copy.dst_mask |= deferred
        return free_mask, True
    # No branch port was free: send the whole flit out any free port
    # (deterministic scan order), mask intact.  For transit flits this
    # is a deflection and is counted as one; an injection taking a
    # non-productive first hop is not (matching the unicast rule).
    for direction in topology.ports_table[node]:
        bit = 1 << direction
        if free_mask & bit:
            flit.dst_mask = deferred
            outputs[direction] = flit
            if must_place:
                flit.deflections += 1
                out.deflections += 1
            return free_mask ^ bit, True
    if must_place and spill:
        # Same fault-mask activation transient as the unicast spill path:
        # drain across a masked-but-present wire rather than drop.
        for direction in topology.ports_table[node]:
            if outputs[direction] is None:
                flit.dst_mask = deferred
                outputs[direction] = flit
                flit.deflections += 1
                out.deflections += 1
                return free_mask, True
    assert not must_place, "deflection invariant violated for multicast flit"
    return free_mask, False
