"""One deflection-routing switch, as a pure combinational function.

Hot-potato ("deflection") routing never buffers more than the incoming
flits: every flit present at a switch input is assigned to *some* output
port every cycle.  When its productive port is taken by an older flit it is
deflected to any free port and tries again from wherever it lands.  This
gives minimal storage, no back-pressure and deadlock freedom (paper
Section II-A); livelock is avoided in practice by oldest-first priority,
which the property tests exercise under saturating load.

Keeping the per-switch routing a pure function of (inputs, pending
injection) makes the fabric's two-phase update order-independent and the
routing unit-testable in isolation.

This function sits on the per-flit hot path of every simulated cycle, so
it is written to avoid allocation: free ports are a bitmask rather than a
set, sorting is skipped when at most one flit contends, the topology's
precomputed tables are indexed directly, and the caller may pass a
reusable :class:`RoutingOutcome` scratch structure via ``out``.
"""

from __future__ import annotations

from operator import attrgetter

from repro.noc.flit import Flit
from repro.noc.topology import Topology

#: Oldest-first priority with a stable tie-break, as a C-level sort key
#: (equivalent to :meth:`Flit.age_key`, without the per-flit method call).
_AGE_KEY = attrgetter("injected_at", "uid")


class RoutingOutcome:
    """Result of routing one switch for one cycle.

    May be reused across calls as a scratch structure (see
    :func:`route_node`'s ``out`` parameter); ``ejected`` and ``outputs``
    are then overwritten in place.
    """

    __slots__ = ("ejected", "outputs", "injected", "deflections", "eject_overflow")

    def __init__(
        self,
        ejected: list[Flit] | None = None,
        outputs: list[Flit | None] | None = None,
        injected: bool = False,
        deflections: int = 0,
        eject_overflow: int = 0,
    ) -> None:
        self.ejected = [] if ejected is None else ejected
        # outputs is indexed by direction, None = idle port.
        self.outputs = [None, None, None, None] if outputs is None else outputs
        self.injected = injected
        self.deflections = deflections
        self.eject_overflow = eject_overflow


def route_node(
    node: int,
    inputs: list[Flit | None],
    inject: Flit | None,
    topology: Topology,
    eject_capacity: int = 1,
    out: RoutingOutcome | None = None,
) -> RoutingOutcome:
    """Route all flits present at ``node`` for this cycle.

    ``inputs`` are the flits latched in this switch's input registers (at
    most one per link).  ``inject`` is the locally pending flit, accepted
    only if an output port remains free after all transit flits are placed
    (local traffic has the lowest priority, the standard deflection rule).

    Up to ``eject_capacity`` flits destined for this node leave through the
    local port, oldest first; any excess arrival is deflected back into the
    network and will retry — the hot-potato answer to an ejection-port
    conflict.

    When ``out`` is given, its lists are recycled and it is returned;
    otherwise a fresh :class:`RoutingOutcome` is allocated.  ``inputs``
    may contain ``None`` entries (idle links), which lets the fabric pass
    its register row without building a filtered list; the caller must
    never present more flits than the node has links.
    """
    if out is None:
        out = RoutingOutcome()
        ejected = out.ejected
        outputs = out.outputs
    else:
        ejected = out.ejected
        ejected.clear()
        outputs = out.outputs
        outputs[0] = outputs[1] = outputs[2] = outputs[3] = None
        out.injected = False

    arrived: list[Flit] | None = None
    contenders: list[Flit] | None = None
    for flit in inputs:
        if flit is None:
            continue
        if flit.dst == node:
            if arrived is None:
                arrived = [flit]
            else:
                arrived.append(flit)
        else:
            if contenders is None:
                contenders = [flit]
            else:
                contenders.append(flit)

    eject_overflow = 0
    if arrived is not None:
        if len(arrived) > 1:
            arrived.sort(key=_AGE_KEY)
        ejected.extend(arrived[:eject_capacity])
        recirculating = arrived[eject_capacity:]
        if recirculating:
            eject_overflow = len(recirculating)
            if contenders is None:
                contenders = recirculating
            else:
                contenders.extend(recirculating)
    out.eject_overflow = eject_overflow

    free_mask = topology.port_mask_table[node]
    productive = topology.productive_table
    base = node * topology.n_nodes
    deflections = 0

    if contenders is not None:
        # Oldest flit gets first pick of ports: the practical livelock guard.
        if len(contenders) > 1:
            contenders.sort(key=_AGE_KEY)
        ports = topology.ports_table[node]
        for flit in contenders:
            placed = False
            for direction in productive[base + flit.dst]:
                bit = 1 << direction
                if free_mask & bit:
                    outputs[direction] = flit
                    free_mask ^= bit
                    placed = True
                    break
            if not placed:
                # Deflect: any free port, deterministic scan order.
                for direction in ports:
                    bit = 1 << direction
                    if free_mask & bit:
                        outputs[direction] = flit
                        free_mask ^= bit
                        placed = True
                        flit.deflections += 1
                        deflections += 1
                        break
            assert placed, "deflection routing must always place a transit flit"
    out.deflections = deflections

    if inject is not None and free_mask:
        injected = False
        for direction in productive[base + inject.dst]:
            bit = 1 << direction
            if free_mask & bit:
                outputs[direction] = inject
                injected = True
                break
        if not injected:
            # Lowest free direction index, matching min() over the old set.
            direction = (free_mask & -free_mask).bit_length() - 1
            outputs[direction] = inject
        out.injected = True

    return out
