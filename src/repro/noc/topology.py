"""Network topologies.

MEDEA uses a 2-D *folded* torus.  Folding is a physical-design trick: the
ring in each dimension is laid out so every link spans at most two tiles,
equalizing wire length.  Logically a folded torus is identical to a torus,
so the model here is a torus with uniform single-cycle links — which is
precisely what folding buys the physical implementation.

A mesh (no wraparound) is provided for ablation studies; deflection routing
still works there because a switch never has more input links than output
links.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.noc.coords import (
    ALL_DIRECTIONS,
    DELTA_X,
    DELTA_Y,
    EAST,
    NORTH,
    SOUTH,
    WEST,
    signed_wrap_delta,
)


class Topology:
    """Base class: a ``width x height`` grid of switch nodes.

    Node indices are row-major: ``index = y * width + x``.  Sub-classes
    define link connectivity (:meth:`neighbor`) and shortest-path direction
    preference (:meth:`productive_directions`); both are precomputed into
    flat tables because they sit on the router's per-flit hot path.
    """

    def __init__(self, width: int, height: int) -> None:
        if width < 2 or height < 1:
            raise ConfigError(f"topology needs width>=2, height>=1, got {width}x{height}")
        self.width = width
        self.height = height
        self.n_nodes = width * height
        # neighbor_table[node][direction] -> node index or -1 (no link).
        self.neighbor_table: list[list[int]] = [
            [self._neighbor_of(node, d) for d in ALL_DIRECTIONS]
            for node in range(self.n_nodes)
        ]
        # productive_table[src * n + dst] -> tuple of preferred directions.
        self.productive_table: list[tuple[int, ...]] = [
            self._productive_of(src, dst)
            for src in range(self.n_nodes)
            for dst in range(self.n_nodes)
        ]
        self.hop_table: list[int] = [
            self._hops_of(src, dst)
            for src in range(self.n_nodes)
            for dst in range(self.n_nodes)
        ]
        # ports_table[node] -> directions with an attached link, ascending;
        # port_mask_table[node] -> the same set as a bitmask over directions.
        self.ports_table: list[tuple[int, ...]] = [
            tuple(d for d in ALL_DIRECTIONS if self.neighbor_table[node][d] >= 0)
            for node in range(self.n_nodes)
        ]
        self.port_mask_table: list[int] = [
            sum(1 << d for d in ports) for ports in self.ports_table
        ]

    # -- coordinates ---------------------------------------------------------

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ConfigError(f"({x},{y}) outside {self.width}x{self.height} grid")
        return y * self.width + x

    def coords_of(self, node: int) -> tuple[int, int]:
        return node % self.width, node // self.width

    # -- fast accessors --------------------------------------------------------

    def neighbor(self, node: int, direction: int) -> int:
        """Neighbor index in ``direction`` or -1 when the link is absent."""
        return self.neighbor_table[node][direction]

    def productive_directions(self, src: int, dst: int) -> tuple[int, ...]:
        """Directions that reduce hop distance, longest dimension first."""
        return self.productive_table[src * self.n_nodes + dst]

    def hop_distance(self, src: int, dst: int) -> int:
        return self.hop_table[src * self.n_nodes + dst]

    def ports_of(self, node: int) -> tuple[int, ...]:
        """Directions with an attached link (all four on a torus)."""
        return self.ports_table[node]

    # -- construction hooks ------------------------------------------------------

    def _neighbor_of(self, node: int, direction: int) -> int:
        raise NotImplementedError

    def _productive_of(self, src: int, dst: int) -> tuple[int, ...]:
        raise NotImplementedError

    def _hops_of(self, src: int, dst: int) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.width}x{self.height}>"


class FoldedTorusTopology(Topology):
    """2-D folded torus: wraparound links, uniform 1-cycle hop latency."""

    def _neighbor_of(self, node: int, direction: int) -> int:
        x, y = self.coords_of(node)
        nx = (x + DELTA_X[direction]) % self.width
        ny = (y + DELTA_Y[direction]) % self.height
        return ny * self.width + nx

    def _deltas(self, src: int, dst: int) -> tuple[int, int]:
        sx, sy = self.coords_of(src)
        dx_, dy_ = self.coords_of(dst)
        return (
            signed_wrap_delta(sx, dx_, self.width),
            signed_wrap_delta(sy, dy_, self.height),
        )

    def _productive_of(self, src: int, dst: int) -> tuple[int, ...]:
        dx, dy = self._deltas(src, dst)
        prefs: list[tuple[int, int]] = []  # (-remaining, direction)
        if dx > 0:
            prefs.append((-dx, EAST))
        elif dx < 0:
            prefs.append((dx, WEST))
        if dy > 0:
            prefs.append((-dy, SOUTH))
        elif dy < 0:
            prefs.append((dy, NORTH))
        # Longest remaining dimension first; direction index breaks ties.
        prefs.sort()
        return tuple(direction for _, direction in prefs)

    def _hops_of(self, src: int, dst: int) -> int:
        dx, dy = self._deltas(src, dst)
        return abs(dx) + abs(dy)


class MeshTopology(Topology):
    """2-D mesh without wraparound, for comparison experiments."""

    def _neighbor_of(self, node: int, direction: int) -> int:
        x, y = self.coords_of(node)
        nx = x + DELTA_X[direction]
        ny = y + DELTA_Y[direction]
        if not (0 <= nx < self.width and 0 <= ny < self.height):
            return -1
        return ny * self.width + nx

    def _productive_of(self, src: int, dst: int) -> tuple[int, ...]:
        sx, sy = self.coords_of(src)
        dx_, dy_ = self.coords_of(dst)
        dx = dx_ - sx
        dy = dy_ - sy
        prefs: list[tuple[int, int]] = []
        if dx > 0:
            prefs.append((-dx, EAST))
        elif dx < 0:
            prefs.append((dx, WEST))
        if dy > 0:
            prefs.append((-dy, SOUTH))
        elif dy < 0:
            prefs.append((dy, NORTH))
        prefs.sort()
        return tuple(direction for _, direction in prefs)

    def _hops_of(self, src: int, dst: int) -> int:
        sx, sy = self.coords_of(src)
        dx_, dy_ = self.coords_of(dst)
        return abs(dx_ - sx) + abs(dy_ - sy)


def grid_for_nodes(n_nodes: int) -> tuple[int, int]:
    """Smallest (width, height) grid with at least ``n_nodes`` tiles.

    Prefers near-square aspect ratios, matching how the paper scales the
    network from 3 to 16 cores (up to a 4x4 folded torus).
    """
    if n_nodes < 2:
        raise ConfigError(f"need at least 2 nodes, got {n_nodes}")
    best: tuple[int, int] | None = None
    best_key: tuple[int, int] | None = None
    for width in range(2, n_nodes + 1):
        height = -(-n_nodes // width)  # ceil division
        if height < 1:
            continue
        key = (width * height - n_nodes, abs(width - height))
        if best_key is None or key < best_key:
            best_key = key
            best = (width, height)
    assert best is not None
    return best
