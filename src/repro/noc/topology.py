"""Network topologies: a general link-graph contract plus the grids.

MEDEA uses a 2-D *folded* torus.  Folding is a physical-design trick: the
ring in each dimension is laid out so every link spans at most two tiles,
equalizing wire length.  Logically a folded torus is identical to a torus,
so the model here is a torus with uniform single-cycle links — which is
precisely what folding buys the physical implementation.

A mesh (no wraparound) is provided for ablation studies; deflection routing
still works there because a switch never has more input links than output
links.

Beyond the single grid, :class:`Topology` is now a general symmetric link
graph: every node exposes numbered *ports* (a grid's ports are its four
compass directions), each carrying an optional link ``(neighbor,
reverse_port, latency, serialization)``.  All routing tables — neighbors,
hop distances, productive-direction preferences, per-port masks — are
built from that graph by breadth-first search rather than closed-form X-Y
arithmetic, so any connected graph routes (the property tests pin the BFS
tables bit-identical to the old closed forms on every grid).
:class:`ChipletTopology` uses the generality: N compute-chiplet meshes
around a central IO chiplet with configurable (slower/narrower)
inter-chiplet links, in the style of AMD Zen3 packages — the ROADMAP
item-3 target of hundreds of tiles.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.noc.coords import (
    ALL_DIRECTIONS,
    DELTA_X,
    DELTA_Y,
    EAST,
    NORTH,
    OPPOSITE,
    SOUTH,
    WEST,
    signed_wrap_delta,
)

#: Port slot used by a chiplet gateway tile for its uplink to the IO hub
#: (slots 0-3 are the intra-chiplet compass directions).
GATEWAY_PORT = 4


class Topology:
    """A symmetric link graph of switch nodes with numbered ports.

    Sub-classes declare connectivity through :meth:`_build_links` — per
    node, a list of port slots, each ``None`` (no link) or a tuple
    ``(neighbor, reverse_port, latency, serialization)`` where
    ``reverse_port`` is the input port on the neighbor that this node's
    output wire feeds, ``latency`` is the link's flight time in cycles
    (1 on-die) and ``serialization`` the cycles each flit occupies the
    wire (1 = full width).  Links must be declared symmetrically: if
    ``a`` reaches ``b`` through port ``p`` with reverse ``q``, then
    ``b``'s slot ``q`` must name ``a`` with reverse ``p``.

    Every routing table is precomputed here because it sits on the
    router's per-flit hot path:

    * ``neighbor_table[node][port]`` — neighbor index or -1;
    * ``reverse_port_table[node][port]`` — the receiving input port
      (a grid's ``OPPOSITE``, generalized);
    * ``hop_table[src * n + dst]`` — BFS hop distance;
    * ``productive_table[src * n + dst]`` — ports that strictly reduce
      hop distance, ordered by :meth:`_productive_ports` (longest
      straight run first, port index as the tie-break — exactly the old
      closed-form "longest dimension first" preference on the grids);
    * ``ports_table`` / ``port_mask_table`` — attached ports per node.

    ``width``/``height`` describe the coordinate plane used for the wire
    format and spatial views; a non-grid topology sets ``width = n_nodes,
    height = 1`` and overrides :meth:`label_of` for human-readable names.
    """

    #: Topology family name, used in diagnostics (sub-classes override).
    kind = "graph"

    #: Spare output ports the multicast router keeps free beyond the
    #: younger-flit reserve before splitting an extra replication branch
    #: (see ``_place_multicast``).  The grids keep one spare so local
    #: injection is not starved by replication bursts — the tuning the
    #: committed goldens were measured with.  A topology with low-degree
    #: hub nodes must set this to 0: on a two-port IO hub any slack means
    #: the remote branch can never split off and the flit livelocks.
    mcast_split_slack = 1

    def __init__(
        self, width: int, height: int, n_nodes: int | None = None
    ) -> None:
        self.width = width
        self.height = height
        self.n_nodes = width * height if n_nodes is None else n_nodes
        links = self._build_links()
        if len(links) != self.n_nodes:
            raise ConfigError(
                f"{self.kind} topology declared {len(links)} link rows "
                f"for {self.n_nodes} nodes"
            )
        self.max_ports = max((len(row) for row in links), default=1) or 1
        for row in links:
            row.extend([None] * (self.max_ports - len(row)))
        self.link_table: list[list[tuple | None]] = links
        self.neighbor_table: list[list[int]] = [
            [(-1 if link is None else link[0]) for link in row]
            for row in links
        ]
        self.reverse_port_table: list[list[int]] = [
            [(-1 if link is None else link[1]) for link in row]
            for row in links
        ]
        self.link_latency_table: list[list[int]] = [
            [(0 if link is None else link[2]) for link in row]
            for row in links
        ]
        self.link_ser_table: list[list[int]] = [
            [(0 if link is None else link[3]) for link in row]
            for row in links
        ]
        self._check_symmetry()
        #: True when every link is single-cycle and full-width — the
        #: fabric's fast path (no delay queue, no wire occupancy).
        self.uniform_links = all(
            link is None or (link[2] == 1 and link[3] == 1)
            for row in links for link in row
        )
        # ports_table[node] -> ports with an attached link, ascending;
        # port_mask_table[node] -> the same set as a bitmask over ports.
        self.ports_table: list[tuple[int, ...]] = [
            tuple(
                port for port in range(self.max_ports)
                if self.neighbor_table[node][port] >= 0
            )
            for node in range(self.n_nodes)
        ]
        self.port_mask_table: list[int] = [
            sum(1 << port for port in ports) for ports in self.ports_table
        ]
        # hop_table[src * n + dst] -> BFS hop distance (-1 = unreachable).
        n = self.n_nodes
        self.hop_table: list[int] = [0] * (n * n)
        for dst in range(n):
            dist = self._bfs_distances(dst)
            base = dst  # hop_table is symmetric; fill the dst column
            for src in range(n):
                self.hop_table[src * n + base] = dist[src]
        # productive_table[src * n + dst] -> tuple of preferred ports.
        self.productive_table: list[tuple[int, ...]] = (
            self._build_productive(killed=None)
        )
        # Lazy per-source latency-weighted distance tables (path_latency).
        self._latency_dist: dict[int, list[int]] = {}

    # -- graph construction hooks -------------------------------------------

    def _build_links(self) -> list[list[tuple | None]]:
        """Per-node port slots: ``(neighbor, reverse_port, latency, ser)``."""
        raise NotImplementedError

    def _productive_pairs(self) -> tuple[tuple[int, int], ...]:
        """Opposite-port pairs ``(keep, drop)`` for preference pruning.

        When *both* ports of a pair strictly reduce hop distance (an
        even-size torus ring tie, or a two-wide ring's double link), the
        ``drop`` port is removed from the candidate list — reproducing
        :func:`~repro.noc.coords.signed_wrap_delta`'s positive-direction
        tie rule.  Non-grid topologies usually need no pruning.
        """
        return ()

    def _check_symmetry(self) -> None:
        for node, row in enumerate(self.link_table):
            for port, link in enumerate(row):
                if link is None:
                    continue
                neighbor, back, latency, ser = link
                if latency < 1 or ser < 1:
                    raise ConfigError(
                        f"{self.kind} link {node}:p{port} has latency "
                        f"{latency}, serialization {ser}; both must be >= 1"
                    )
                mirror = self.link_table[neighbor][back]
                if mirror is None or mirror[0] != node or mirror[1] != port:
                    raise ConfigError(
                        f"{self.kind} link {node}:p{port}->{neighbor} has "
                        f"no symmetric reverse at {neighbor}:p{back}"
                    )

    # -- BFS table construction ---------------------------------------------

    def _bfs_distances(
        self, dst: int, killed: list[int] | None = None
    ) -> list[int]:
        """Hop distances to ``dst`` over the (surviving) links."""
        neighbor = self.neighbor_table
        ports = self.ports_table
        dist = [-1] * self.n_nodes
        dist[dst] = 0
        frontier = [dst]
        while frontier:
            nxt = []
            for u in frontier:
                row = neighbor[u]
                dead = killed[u] if killed is not None else 0
                for port in ports[u]:
                    if dead >> port & 1:
                        continue
                    v = row[port]
                    if dist[v] < 0:
                        dist[v] = dist[u] + 1
                        nxt.append(v)
            frontier = nxt
        return dist

    def _straight_run(
        self, src: int, port: int, dist: list[int],
        killed: list[int] | None,
    ) -> int:
        """Consecutive same-port hops from ``src`` that each cut distance.

        On a grid this is the remaining displacement along the port's
        dimension — the quantity the old closed form sorted preferences
        by ("longest dimension first").
        """
        neighbor = self.neighbor_table
        node, remaining, run = src, dist[src], 0
        while True:
            if killed is not None and killed[node] >> port & 1:
                break
            nxt = (
                neighbor[node][port] if port < len(neighbor[node]) else -1
            )
            if nxt < 0 or dist[nxt] != remaining - 1:
                break
            run += 1
            node, remaining = nxt, remaining - 1
            if remaining == 0:
                break
        return run

    def _productive_ports(
        self, src: int, dist: list[int], killed: list[int] | None
    ) -> tuple[int, ...]:
        """Preferred ports out of ``src`` toward the BFS field's root."""
        neighbor = self.neighbor_table
        dead = killed[src] if killed is not None else 0
        here = dist[src]
        candidates = [
            port for port in self.ports_table[src]
            if not (dead >> port & 1)
            and 0 <= dist[neighbor[src][port]] < here
        ]
        if len(candidates) > 1:
            for keep, drop in self._productive_pairs():
                if keep in candidates and drop in candidates:
                    candidates.remove(drop)
            candidates.sort(
                key=lambda port: (
                    -self._straight_run(src, port, dist, killed), port
                )
            )
        return tuple(candidates)

    def _build_productive(
        self, killed: list[int] | None
    ) -> list[tuple[int, ...]]:
        n = self.n_nodes
        table: list[tuple[int, ...]] = [()] * (n * n)
        for dst in range(n):
            dist = self._bfs_distances(dst, killed)
            for src in range(n):
                if src == dst or dist[src] < 0:
                    continue
                table[src * n + dst] = self._productive_ports(
                    src, dist, killed
                )
        return table

    def productive_override(self, killed: list[int]) -> list[tuple[int, ...]]:
        """Rebuild the productive table on the surviving (unkilled) graph.

        ``killed[node]`` is a bitmask of dead output ports.  A real
        fault-tolerant NoC reprograms its routing tables when a link
        dies; this is the model's equivalent, built by the same BFS the
        pristine tables use, so rerouting is topology-derived everywhere
        (mesh, torus, or chiplet).  An unreachable destination gets an
        empty tuple: such flits deflect until the watchdog reports the
        partition.
        """
        return self._build_productive(killed)

    # -- coordinates ---------------------------------------------------------

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ConfigError(
                f"({x},{y}) outside {self.width}x{self.height} "
                f"{self.kind} coordinate plane"
            )
        return y * self.width + x

    def coords_of(self, node: int) -> tuple[int, int]:
        return node % self.width, node // self.width

    def label_of(self, node: int) -> str:
        """Human label for spatial views and stall attribution."""
        x, y = self.coords_of(node)
        return f"{x},{y}"

    # -- fast accessors --------------------------------------------------------

    def neighbor(self, node: int, port: int) -> int:
        """Neighbor index through ``port`` or -1 when the link is absent."""
        return self.neighbor_table[node][port]

    def productive_directions(self, src: int, dst: int) -> tuple[int, ...]:
        """Ports that reduce hop distance, longest straight run first."""
        return self.productive_table[src * self.n_nodes + dst]

    def hop_distance(self, src: int, dst: int) -> int:
        return self.hop_table[src * self.n_nodes + dst]

    def ports_of(self, node: int) -> tuple[int, ...]:
        """Ports with an attached link (all four on a torus)."""
        return self.ports_table[node]

    def link_latency(self, node: int, port: int) -> int:
        return self.link_latency_table[node][port]

    def path_latency(self, src: int, dst: int) -> int:
        """Minimum cumulative link latency from ``src`` to ``dst``.

        On uniform topologies this is the hop distance; with slow
        inter-chiplet links it is the latency-weighted shortest path
        (Dijkstra over per-link latencies) — what a credit planner needs
        to cover a round trip.  Tables are built lazily per source and
        cached.
        """
        table = self._latency_dist.get(src)
        if table is None:
            if self.uniform_links:
                base = src * self.n_nodes
                table = self.hop_table[base:base + self.n_nodes]
            else:
                import heapq

                table = [None] * self.n_nodes
                heap = [(0, src)]
                while heap:
                    dist, node = heapq.heappop(heap)
                    if table[node] is not None:
                        continue
                    table[node] = dist
                    row = self.link_table[node]
                    for port, slot in enumerate(row):
                        if slot is None:
                            continue
                        neighbor = slot[0]
                        if table[neighbor] is None:
                            heapq.heappush(
                                heap,
                                (dist + self.link_latency_table[node][port],
                                 neighbor),
                            )
            self._latency_dist[src] = table
        return table[dst]

    def port_name(self, node: int, port: int) -> str:
        """Human name for an output port (compass letter on grids)."""
        del node
        from repro.noc.coords import DIRECTION_NAMES
        if 0 <= port < len(DIRECTION_NAMES):
            return DIRECTION_NAMES[port]
        return f"p{port}"

    # -- hierarchy ------------------------------------------------------------

    def chiplet_of(self, node: int) -> int:
        """Compute-chiplet index of ``node`` (-1 = not on one; flat
        topologies place every node on chiplet -1)."""
        del node
        return -1

    def chiplet_groups(self) -> list[list[int]] | None:
        """Node groups per compute chiplet, or None on a flat topology."""
        return None

    def spatial_panels(self) -> list[dict] | None:
        """Per-chiplet render panels for the spatial heatmaps, or None
        when the whole topology is one grid (the legacy view)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.width}x{self.height}>"


class GridTopology(Topology):
    """Shared machinery of the 2-D grids: four compass ports per node.

    Port indices equal the direction constants of
    :mod:`repro.noc.coords`, so ``reverse_port`` is ``OPPOSITE`` and the
    generic tables line up with the historical direction-indexed ones.
    The closed-form preference/hop methods (:meth:`closed_form_productive`,
    :meth:`closed_form_hops`) are retained as the executable reference the
    property tests compare the BFS tables against.
    """

    def __init__(self, width: int, height: int) -> None:
        if width < 2 or height < 1:
            raise ConfigError(
                f"{self.kind} topology needs width>=2, height>=1, "
                f"got {width}x{height}"
            )
        super().__init__(width, height)

    def _build_links(self) -> list[list[tuple | None]]:
        rows: list[list[tuple | None]] = []
        for node in range(self.width * self.height):
            row: list[tuple | None] = []
            for direction in ALL_DIRECTIONS:
                neighbor = self._neighbor_of(node, direction)
                row.append(
                    None if neighbor < 0
                    else (neighbor, OPPOSITE[direction], 1, 1)
                )
            rows.append(row)
        return rows

    def _productive_pairs(self) -> tuple[tuple[int, int], ...]:
        # signed_wrap_delta resolves an even-ring tie to the positive
        # displacement: EAST over WEST, SOUTH over NORTH.
        return ((EAST, WEST), (SOUTH, NORTH))

    # -- construction hooks --------------------------------------------------

    def _neighbor_of(self, node: int, direction: int) -> int:
        raise NotImplementedError

    # -- closed-form references (property-test oracle) -----------------------

    def closed_form_productive(self, src: int, dst: int) -> tuple[int, ...]:
        raise NotImplementedError

    def closed_form_hops(self, src: int, dst: int) -> int:
        raise NotImplementedError


class FoldedTorusTopology(GridTopology):
    """2-D folded torus: wraparound links, uniform 1-cycle hop latency."""

    kind = "folded_torus"

    def _neighbor_of(self, node: int, direction: int) -> int:
        x, y = self.coords_of(node)
        nx = (x + DELTA_X[direction]) % self.width
        ny = (y + DELTA_Y[direction]) % self.height
        return ny * self.width + nx

    def _deltas(self, src: int, dst: int) -> tuple[int, int]:
        sx, sy = self.coords_of(src)
        dx_, dy_ = self.coords_of(dst)
        return (
            signed_wrap_delta(sx, dx_, self.width),
            signed_wrap_delta(sy, dy_, self.height),
        )

    def closed_form_productive(self, src: int, dst: int) -> tuple[int, ...]:
        dx, dy = self._deltas(src, dst)
        prefs: list[tuple[int, int]] = []  # (-remaining, direction)
        if dx > 0:
            prefs.append((-dx, EAST))
        elif dx < 0:
            prefs.append((dx, WEST))
        if dy > 0:
            prefs.append((-dy, SOUTH))
        elif dy < 0:
            prefs.append((dy, NORTH))
        # Longest remaining dimension first; direction index breaks ties.
        prefs.sort()
        return tuple(direction for _, direction in prefs)

    def closed_form_hops(self, src: int, dst: int) -> int:
        dx, dy = self._deltas(src, dst)
        return abs(dx) + abs(dy)


class MeshTopology(GridTopology):
    """2-D mesh without wraparound, for comparison experiments."""

    kind = "mesh"

    def _neighbor_of(self, node: int, direction: int) -> int:
        x, y = self.coords_of(node)
        nx = x + DELTA_X[direction]
        ny = y + DELTA_Y[direction]
        if not (0 <= nx < self.width and 0 <= ny < self.height):
            return -1
        return ny * self.width + nx

    def closed_form_productive(self, src: int, dst: int) -> tuple[int, ...]:
        sx, sy = self.coords_of(src)
        dx_, dy_ = self.coords_of(dst)
        dx = dx_ - sx
        dy = dy_ - sy
        prefs: list[tuple[int, int]] = []
        if dx > 0:
            prefs.append((-dx, EAST))
        elif dx < 0:
            prefs.append((dx, WEST))
        if dy > 0:
            prefs.append((-dy, SOUTH))
        elif dy < 0:
            prefs.append((dy, NORTH))
        prefs.sort()
        return tuple(direction for _, direction in prefs)

    def closed_form_hops(self, src: int, dst: int) -> int:
        sx, sy = self.coords_of(src)
        dx_, dy_ = self.coords_of(dst)
        return abs(dx_ - sx) + abs(dy_ - sy)


class ChipletTopology(Topology):
    """N compute-chiplet meshes around one central IO chiplet.

    The AMD-Zen3-style package of ROADMAP item 3: node 0 is the IO hub
    (the MPMMU lives there, next to the memory controller, exactly where
    the real IO die puts it); compute chiplet ``c`` is a
    ``chiplet_width x chiplet_height`` mesh at nodes ``1 + c*w*h ...``
    in local row-major order.  Each chiplet's local tile (0,0) is its
    *gateway*: a fifth port (``GATEWAY_PORT``) connects it to the hub
    over an inter-chiplet link with configurable flight latency and
    serialization (a narrower off-die wire takes several cycles per
    flit).  The hub's port ``c`` is chiplet ``c``'s uplink.

    Intra-chiplet routing, deflection, multicast replication and fault
    rerouting all fall out of the generic BFS tables — nothing in the
    router knows chiplets exist.  The hierarchy *is* visible to the
    layers that want it: :meth:`chiplet_groups` (hierarchical
    collectives), :meth:`label_of` (``c1:2,0`` stall attribution) and
    :meth:`spatial_panels` (per-chiplet heatmaps).
    """

    kind = "chiplet"

    #: The hub has exactly ``n_chiplets`` ports; with the grids' spare-
    #: port slack a multicast flit entering a 2-port hub could never
    #: split its remote-chiplet branch (the merged flit bounces back to
    #: the source chiplet forever), so replication uses the exact
    #: younger-flit reserve here.
    mcast_split_slack = 0

    def __init__(
        self,
        n_chiplets: int,
        chiplet_width: int,
        chiplet_height: int,
        link_latency: int = 4,
        link_serialization: int = 1,
    ) -> None:
        if n_chiplets < 1:
            raise ConfigError(
                f"chiplet topology needs >= 1 compute chiplet, "
                f"got {n_chiplets}"
            )
        if chiplet_width < 1 or chiplet_height < 1:
            raise ConfigError(
                f"chiplet topology needs chiplet dimensions >= 1x1, "
                f"got {chiplet_width}x{chiplet_height}"
            )
        if link_latency < 1 or link_serialization < 1:
            raise ConfigError(
                f"chiplet inter-chiplet links need latency and "
                f"serialization >= 1, got latency={link_latency}, "
                f"serialization={link_serialization}"
            )
        self.n_chiplets = n_chiplets
        self.chiplet_width = chiplet_width
        self.chiplet_height = chiplet_height
        self.tiles_per_chiplet = chiplet_width * chiplet_height
        self.hub_node = 0
        self.inter_link_latency = link_latency
        self.inter_link_serialization = link_serialization
        total = 1 + n_chiplets * self.tiles_per_chiplet
        super().__init__(width=total, height=1, n_nodes=total)

    # -- node numbering -------------------------------------------------------

    def chiplet_of(self, node: int) -> int:
        if node == self.hub_node:
            return -1
        return (node - 1) // self.tiles_per_chiplet

    def local_coords_of(self, node: int) -> tuple[int, int]:
        local = (node - 1) % self.tiles_per_chiplet
        return local % self.chiplet_width, local // self.chiplet_width

    def chiplet_node(self, chiplet: int, x: int, y: int) -> int:
        if not (0 <= chiplet < self.n_chiplets):
            raise ConfigError(
                f"chiplet index {chiplet} outside 0..{self.n_chiplets - 1}"
            )
        if not (0 <= x < self.chiplet_width and 0 <= y < self.chiplet_height):
            raise ConfigError(
                f"({x},{y}) outside the {self.chiplet_width}x"
                f"{self.chiplet_height} chiplet mesh"
            )
        return 1 + chiplet * self.tiles_per_chiplet + y * self.chiplet_width + x

    def gateway_of(self, chiplet: int) -> int:
        """The tile carrying chiplet ``chiplet``'s uplink (local (0,0))."""
        return self.chiplet_node(chiplet, 0, 0)

    def chiplet_members(self, chiplet: int) -> list[int]:
        base = 1 + chiplet * self.tiles_per_chiplet
        return list(range(base, base + self.tiles_per_chiplet))

    def chiplet_groups(self) -> list[list[int]]:
        return [
            self.chiplet_members(chiplet)
            for chiplet in range(self.n_chiplets)
        ]

    def label_of(self, node: int) -> str:
        if node == self.hub_node:
            return "io"
        x, y = self.local_coords_of(node)
        return f"c{self.chiplet_of(node)}:{x},{y}"

    def port_name(self, node: int, port: int) -> str:
        if node == self.hub_node:
            return f"c{port}"
        if port == GATEWAY_PORT:
            return "IO"
        return super().port_name(node, port)

    # -- graph construction ---------------------------------------------------

    def _build_links(self) -> list[list[tuple | None]]:
        lat = self.inter_link_latency
        ser = self.inter_link_serialization
        rows: list[list[tuple | None]] = [
            [
                (self.gateway_of(chiplet), GATEWAY_PORT, lat, ser)
                for chiplet in range(self.n_chiplets)
            ]
        ]
        for node in range(1, self.n_nodes):
            chiplet = self.chiplet_of(node)
            x, y = self.local_coords_of(node)
            row: list[tuple | None] = []
            for direction in ALL_DIRECTIONS:
                nx = x + DELTA_X[direction]
                ny = y + DELTA_Y[direction]
                if (0 <= nx < self.chiplet_width
                        and 0 <= ny < self.chiplet_height):
                    row.append((
                        self.chiplet_node(chiplet, nx, ny),
                        OPPOSITE[direction], 1, 1,
                    ))
                else:
                    row.append(None)
            if (x, y) == (0, 0):
                row.append((self.hub_node, chiplet, lat, ser))
            rows.append(row)
        return rows

    def _productive_pairs(self) -> tuple[tuple[int, int], ...]:
        # Chiplet meshes have no wraparound, so no even-ring ties exist;
        # the grid pairs are kept for the (unreachable) safety of it.
        return ((EAST, WEST), (SOUTH, NORTH))

    # -- spatial views --------------------------------------------------------

    def spatial_panels(self) -> list[dict]:
        panels = [{
            "name": "io",
            "width": 1,
            "height": 1,
            "nodes": [[self.hub_node]],
        }]
        for chiplet in range(self.n_chiplets):
            panels.append({
                "name": f"chiplet {chiplet}",
                "width": self.chiplet_width,
                "height": self.chiplet_height,
                "nodes": [
                    [
                        self.chiplet_node(chiplet, x, y)
                        for x in range(self.chiplet_width)
                    ]
                    for y in range(self.chiplet_height)
                ],
            })
        return panels

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ChipletTopology {self.n_chiplets}x"
            f"({self.chiplet_width}x{self.chiplet_height})+io>"
        )


def grid_for_nodes(n_nodes: int, kind: str = "folded_torus") -> tuple[int, int]:
    """Smallest (width, height) grid with at least ``n_nodes`` tiles.

    Prefers near-square aspect ratios, matching how the paper scales the
    network from 3 to 16 cores (up to a 4x4 folded torus).  ``kind``
    names the topology being built so an impossible request is diagnosed
    with its context.
    """
    if n_nodes < 2:
        raise ConfigError(
            f"a {kind} grid needs at least 2 nodes (one worker plus the "
            f"MPMMU), got {n_nodes}"
        )
    best: tuple[int, int] | None = None
    best_key: tuple[int, int] | None = None
    for width in range(2, n_nodes + 1):
        height = -(-n_nodes // width)  # ceil division
        if height < 1:
            continue
        key = (width * height - n_nodes, abs(width - height))
        if best_key is None or key < best_key:
            best_key = key
            best = (width, height)
    assert best is not None
    return best


def chiplet_grid_for(n_workers: int, n_chiplets: int) -> tuple[int, int]:
    """Smallest near-square per-chiplet mesh holding the workers' share."""
    if n_chiplets < 1:
        raise ConfigError(
            f"a chiplet topology needs >= 1 compute chiplet, "
            f"got {n_chiplets}"
        )
    per_chiplet = max(1, -(-n_workers // n_chiplets))
    best: tuple[int, int] | None = None
    best_key: tuple[int, int, int] | None = None
    for width in range(1, per_chiplet + 1):
        height = -(-per_chiplet // width)
        key = (width * height - per_chiplet, abs(width - height), width)
        if best_key is None or key < best_key:
            best_key = key
            best = (width, height)
    assert best is not None
    return best


def build_topology(
    kind: str,
    n_nodes: int,
    grid: tuple[int, int] | None = None,
    chiplets: int = 4,
    chiplet_grid: tuple[int, int] | None = None,
    chiplet_link_latency: int = 4,
    chiplet_link_width: int = 1,
) -> Topology:
    """Construct the topology for one system (the single factory).

    ``n_nodes`` counts every NoC endpoint (workers + MPMMU).  For the
    grids, ``grid`` overrides the near-square fit; for ``"chiplet"``,
    ``chiplet_grid`` sizes each compute mesh (default: smallest
    near-square fit of the workers split across ``chiplets``) and the
    IO hub is node 0.  ``chiplet_link_width`` is the inter-chiplet
    serialization factor: ``2`` halves the off-die wire width, so every
    flit occupies it for two cycles.
    """
    if kind == "chiplet":
        n_workers = n_nodes - 1
        if chiplet_grid is None:
            chiplet_grid = chiplet_grid_for(n_workers, chiplets)
        width, height = chiplet_grid
        topology = ChipletTopology(
            chiplets, width, height,
            link_latency=chiplet_link_latency,
            link_serialization=chiplet_link_width,
        )
        if topology.n_nodes < n_nodes:
            raise ConfigError(
                f"chiplet topology ({chiplets} chiplets of {width}x{height} "
                f"plus the IO hub = {topology.n_nodes} tiles) too small for "
                f"{n_nodes} nodes; grow chiplets or chiplet_grid"
            )
        return topology
    if kind not in ("folded_torus", "mesh"):
        raise ConfigError(
            f"unknown topology kind {kind!r}; "
            f"use 'folded_torus', 'mesh' or 'chiplet'"
        )
    width, height = grid or grid_for_nodes(n_nodes, kind)
    if width * height < n_nodes:
        raise ConfigError(
            f"{kind} grid {width}x{height} ({width * height} tiles) too "
            f"small for {n_nodes} nodes"
        )
    if kind == "mesh":
        return MeshTopology(width, height)
    return FoldedTorusTopology(width, height)
