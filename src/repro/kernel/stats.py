"""Lightweight statistics collection for simulator components."""

from __future__ import annotations

from bisect import bisect_left
from typing import Any


class CounterSet:
    """A named bag of integer counters.

    Counting must stay cheap (it happens on hot per-cycle paths), so this is
    a thin wrapper over a dict with convenience accessors and merge support
    for aggregating across components or sweep runs.  Hot call sites may
    batch increments in plain local ints and flush them straight into
    ``_counters`` once per step or sleep.
    """

    __slots__ = ("name", "_counters")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._counters: dict[str, int] = {}

    def inc(self, key: str, amount: int = 1) -> None:
        counters = self._counters
        counters[key] = counters.get(key, 0) + amount

    def set_max(self, key: str, value: int) -> None:
        if value > self._counters.get(key, 0):
            self._counters[key] = value

    def get(self, key: str, default: int = 0) -> int:
        return self._counters.get(key, default)

    def __getitem__(self, key: str) -> int:
        return self._counters.get(key, 0)

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def merge(self, other: "CounterSet") -> None:
        """Add every counter of ``other`` into this set."""
        for key, value in other._counters.items():
            self.inc(key, value)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CounterSet {self.name} {self._counters}>"


class LatencyStat:
    """Streaming min/max/mean/histogram for per-event latencies.

    Used for flit network latency and memory-transaction round trips.  The
    histogram uses fixed power-of-two buckets so recording stays O(1) and
    allocation-free.
    """

    #: Bucket upper bounds (inclusive); the last bucket is open-ended.
    BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384)

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None
        self.buckets = [0] * (len(self.BOUNDS) + 1)

    def record(self, value: int) -> None:
        # O(1)-ish and allocation-free: bisect over the inclusive bounds
        # lands values past the last bound in the open-ended bucket.
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.buckets[bisect_left(self.BOUNDS, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile_bound(self, fraction: float) -> int | None:
        """Upper bucket bound containing the given fraction of samples.

        Returns ``None`` when empty.  This is a bucketed approximation —
        adequate for the "sporadic high latency flits" observation the
        paper makes about deflection routing.
        """
        if not self.count:
            return None
        threshold = fraction * self.count
        seen = 0
        for index, bucket in enumerate(self.buckets):
            seen += bucket
            if seen >= threshold:
                if index < len(self.BOUNDS):
                    return self.BOUNDS[index]
                return self.max
        return self.max

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p99_bound": self.percentile_bound(0.99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<LatencyStat {self.name} n={self.count} mean={self.mean:.1f} "
            f"max={self.max}>"
        )
