"""Optional event tracing.

Tracing is off by default and adds a single attribute check to hot paths.
When enabled it records ``(cycle, source, kind, fields)`` tuples which the
tests and examples use to assert on protocol sequences (e.g. that a write
follows the Req/Ack/Data/Ack exchange of Fig. 4a).
"""

from __future__ import annotations

from typing import Any, Iterable


class TraceEvent:
    """A single trace record."""

    __slots__ = ("cycle", "source", "kind", "fields")

    def __init__(self, cycle: int, source: str, kind: str, fields: dict[str, Any]):
        self.cycle = cycle
        self.source = source
        self.kind = kind
        self.fields = fields

    def __repr__(self) -> str:
        inner = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.cycle}] {self.source} {self.kind} {inner}"


class Tracer:
    """Collects :class:`TraceEvent` records when enabled.

    With a ``limit``, the tracer is a ring buffer over the *last* N
    events: the newest record evicts the oldest once full, and
    ``dropped`` counts the evictions.  (Keeping the tail rather than the
    head means watchdog/timeout reports show the hang, not startup
    noise.)
    """

    def __init__(self, enabled: bool = False, limit: int | None = None) -> None:
        self.enabled = enabled
        self.limit = limit
        self._events: list[TraceEvent] = []
        #: Ring slot the next event overwrites once the buffer is full.
        self._next = 0
        self.dropped = 0

    @property
    def events(self) -> list[TraceEvent]:
        """Recorded events in chronological order."""
        if self.limit is None or len(self._events) < self.limit:
            return self._events
        return self._events[self._next:] + self._events[:self._next]

    def emit(self, cycle: int, source: str, kind: str, **fields: Any) -> None:
        if not self.enabled:
            return
        event = TraceEvent(cycle, source, kind, fields)
        if self.limit is not None and len(self._events) >= self.limit:
            self._events[self._next] = event
            self._next = (self._next + 1) % self.limit
            self.dropped += 1
            return
        self._events.append(event)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def from_source(self, source: str) -> list[TraceEvent]:
        return [event for event in self.events if event.source == source]

    def kinds(self) -> Iterable[str]:
        return {event.kind for event in self.events}

    def clear(self) -> None:
        self._events.clear()
        self._next = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "on" if self.enabled else "off"
        return f"<Tracer {state} {len(self.events)} events>"
