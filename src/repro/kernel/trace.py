"""Optional event tracing.

Tracing is off by default and adds a single attribute check to hot paths.
When enabled it records ``(cycle, source, kind, fields)`` tuples which the
tests and examples use to assert on protocol sequences (e.g. that a write
follows the Req/Ack/Data/Ack exchange of Fig. 4a).
"""

from __future__ import annotations

from typing import Any, Iterable


class TraceEvent:
    """A single trace record."""

    __slots__ = ("cycle", "source", "kind", "fields")

    def __init__(self, cycle: int, source: str, kind: str, fields: dict[str, Any]):
        self.cycle = cycle
        self.source = source
        self.kind = kind
        self.fields = fields

    def __repr__(self) -> str:
        inner = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.cycle}] {self.source} {self.kind} {inner}"


class Tracer:
    """Collects :class:`TraceEvent` records when enabled."""

    def __init__(self, enabled: bool = False, limit: int | None = None) -> None:
        self.enabled = enabled
        self.limit = limit
        self.events: list[TraceEvent] = []
        self.dropped = 0

    def emit(self, cycle: int, source: str, kind: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(TraceEvent(cycle, source, kind, fields))

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def from_source(self, source: str) -> list[TraceEvent]:
        return [event for event in self.events if event.source == source]

    def kinds(self) -> Iterable[str]:
        return {event.kind for event in self.events}

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "on" if self.enabled else "off"
        return f"<Tracer {state} {len(self.events)} events>"
