"""Base class for clocked hardware components."""

from __future__ import annotations

import typing

from repro.kernel.stats import CounterSet

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.simulator import Simulator


class Component:
    """A synchronous block stepped once per cycle while *active*.

    Sub-classes implement :meth:`step`.  A component that has no work to do
    should call :meth:`sleep` (optionally with a wakeup cycle); an external
    event source (an arriving flit, a freed FIFO slot) re-activates it with
    :meth:`wake`.  This is the mechanism behind the kernel's activity gating.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.sim: Simulator | None = None
        self.active = False
        self.stats = CounterSet(name)
        #: Registration index (kernel phase order); set by Simulator.register.
        self._order = -1
        #: Index into the kernel's active array, or -1 while inactive.
        self._active_slot = -1

    # -- kernel wiring -----------------------------------------------------

    def attach(self, sim: Simulator) -> None:
        """Called by :meth:`Simulator.register`; do not call directly."""
        self.sim = sim

    def step(self, cycle: int) -> None:
        """Advance one clock cycle.  Sub-classes must override."""
        raise NotImplementedError

    # -- activity control --------------------------------------------------

    def wake(self) -> None:
        """Mark the component active so it is stepped from the next cycle
        (or later this cycle, when woken by an earlier-phase component)."""
        if not self.active:
            self.active = True
            if self.sim is not None:
                self.sim.notify_activated(self)

    def sleep(self, until: int | None = None) -> None:
        """Stop being stepped; optionally schedule a wakeup at ``until``.

        Only the component itself may call this (the kernel's self-sleep
        invariant): the active-set scheduler assumes a component cannot be
        put to sleep while queued in the current cycle's agenda.
        """
        if self.active:
            self.active = False
            if self.sim is not None:
                self.sim.notify_deactivated(self)
        if until is not None:
            assert self.sim is not None, "cannot schedule before attach()"
            self.sim.wake_at(self, until)

    # -- debugging ---------------------------------------------------------

    def describe_state(self) -> str:
        """One-line state description used in deadlock diagnostics."""
        return "active" if self.active else "idle"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
