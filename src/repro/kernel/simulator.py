"""The cycle-level simulation kernel.

The kernel models a single global clock.  Registered components are stepped
in registration order on every cycle in which they are active; registration
order therefore defines intra-cycle phase ordering (the system builder
registers the NoC fabric first, then the processing nodes, so ejected flits
become visible to a node in the same cycle they leave the network, and
injected flits enter the network on the following cycle).

Three exact optimizations keep Python wall-clock time proportional to the
number of *events* rather than the number of *cycles* or *components*:

* components de-activate themselves when blocked and are re-activated
  either by a scheduled wakeup (time-blocked, e.g. a 19-cycle FP add) or
  by an explicit :meth:`~repro.kernel.component.Component.wake` from a peer
  (event-blocked, e.g. waiting for a reply flit);
* when no component is active the clock jumps to the next wakeup;
* a cycle only visits the *active* components: the kernel maintains an
  explicit active set (a swap-remove array updated by ``wake``/``sleep``)
  and steps it through a per-cycle min-heap of registration orders, so a
  cycle costs O(active log active) rather than O(registered).

Active-set invariants (relied on for cycle-exactness):

* only a component itself calls ``sleep()`` (self-sleep invariant), so a
  component scheduled in the current cycle's agenda cannot turn inactive
  before it is popped;
* a component woken *mid-cycle* by an earlier-registered component is
  stepped in the same cycle (pushed into the agenda); one woken by a
  later-registered component, or by itself, is stepped the next cycle —
  byte-for-byte the behaviour of the original scan-all loop;
* agenda pops are strictly ascending in registration order because a
  mid-cycle push only happens for orders greater than the one currently
  stepping.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.errors import DeadlockError, SimulationError
from repro.kernel.component import Component


class Simulator:
    """Global clock and scheduler for a set of :class:`Component` objects."""

    def __init__(self) -> None:
        self.cycle = 0
        self._components: list[Component] = []
        #: Unordered active set; ``Component._active_slot`` indexes into it.
        self._active: list[Component] = []
        self._wakeups: list[tuple[int, int, Component]] = []
        self._wakeup_seq = 0
        self._running = False
        #: Registration order of the component currently stepping, or -1
        #: outside the step loop.  Mid-cycle wakes compare against it.
        self._stepping_order = -1
        self._agenda: list[int] = []

    # -- registration -------------------------------------------------------

    def register(self, component: Component) -> Component:
        """Add ``component`` to the stepped set (in phase order) and return it."""
        if component.sim is not None:
            raise SimulationError(f"{component.name} already registered")
        component.attach(self)
        component._order = len(self._components)
        self._components.append(component)
        if component.active:
            component._active_slot = len(self._active)
            self._active.append(component)
        return component

    @property
    def components(self) -> tuple[Component, ...]:
        return tuple(self._components)

    @property
    def n_active(self) -> int:
        return len(self._active)

    # -- activity bookkeeping (called from Component) -----------------------

    def notify_activated(self, component: Component) -> None:
        component._active_slot = len(self._active)
        self._active.append(component)
        if -1 < self._stepping_order < component._order:
            # Woken mid-cycle by an earlier-phase component: step it this
            # cycle, exactly where the registration-order scan would have.
            heapq.heappush(self._agenda, component._order)

    def notify_deactivated(self, component: Component) -> None:
        active = self._active
        slot = component._active_slot
        assert 0 <= slot < len(active), "activity accounting underflow"
        last = active.pop()
        if last is not component:
            active[slot] = last
            last._active_slot = slot
        component._active_slot = -1

    def wake_at(self, component: Component, cycle: int) -> None:
        """Schedule ``component`` to become active at ``cycle`` (>= now)."""
        if cycle < self.cycle:
            raise SimulationError(
                f"wakeup for {component.name} at {cycle} is in the past "
                f"(now {self.cycle})"
            )
        self._wakeup_seq += 1
        heapq.heappush(self._wakeups, (cycle, self._wakeup_seq, component))

    # -- main loop -----------------------------------------------------------

    def run(
        self,
        max_cycles: int | None = None,
        until: Callable[[], bool] | None = None,
        until_idle: bool = False,
    ) -> int:
        """Advance the clock until ``until()`` is true (or ``max_cycles``).

        Returns the number of cycles elapsed during this call.  Raises
        :class:`DeadlockError` if the system goes fully idle with no pending
        wakeup while ``until`` is still false — i.e. a genuine protocol
        deadlock, with a per-component diagnostic in the message.

        ``until_idle=True`` is an exactness-preserving optimization for
        stop conditions that can only become true when every component is
        asleep (e.g. "all programs drained"): ``until`` is then consulted
        only on cycles where the active set is empty, instead of every
        cycle.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        start = self.cycle
        deadline = None if max_cycles is None else start + max_cycles
        wakeups = self._wakeups
        components = self._components
        active = self._active
        agenda = self._agenda
        heappop = heapq.heappop
        heapify = heapq.heapify
        try:
            while True:
                if active:
                    if until is not None and not until_idle and until():
                        break
                else:
                    if until is not None and until():
                        break
                if deadline is not None and self.cycle >= deadline:
                    if until is None:
                        break
                    raise SimulationError(
                        f"max_cycles={max_cycles} exceeded before stop "
                        f"condition (now {self.cycle})"
                    )
                # Fast-forward over idle time.
                if not active:
                    if not wakeups:
                        if until is None:
                            break
                        raise DeadlockError(self._deadlock_report())
                    target = wakeups[0][0]
                    if deadline is not None and target > deadline:
                        self.cycle = deadline
                        continue
                    if target > self.cycle:
                        self.cycle = target
                # Release due wakeups.
                now = self.cycle
                while wakeups and wakeups[0][0] <= now:
                    __, __, comp = heappop(wakeups)
                    comp.wake()
                # Step the active set in phase (registration) order.  The
                # single-component case (very common once activity gating
                # kicks in) skips the heap entirely; mid-cycle wakes of
                # later-phase components land in the agenda either way.
                if len(active) == 1:
                    comp = active[0]
                    self._stepping_order = comp._order
                    comp.step(now)
                else:
                    for comp in active:
                        agenda.append(comp._order)
                    heapify(agenda)
                while agenda:
                    order = heappop(agenda)
                    comp = components[order]
                    if comp.active:
                        self._stepping_order = order
                        comp.step(now)
                self._stepping_order = -1
                self.cycle = now + 1
        finally:
            del agenda[:]
            self._stepping_order = -1
            self._running = False
        return self.cycle - start

    # -- diagnostics ----------------------------------------------------------

    def _deadlock_report(self) -> str:
        lines = [f"deadlock at cycle {self.cycle}: no active component, no wakeup"]
        for comp in self._components:
            lines.append(f"  {comp.name}: {comp.describe_state()}")
        return "\n".join(lines)
