"""The cycle-level simulation kernel.

The kernel models a single global clock.  Registered components are stepped
in registration order on every cycle in which they are active; registration
order therefore defines intra-cycle phase ordering (the system builder
registers the NoC fabric first, then the processing nodes, so ejected flits
become visible to a node in the same cycle they leave the network, and
injected flits enter the network on the following cycle).

Two exact optimizations keep Python wall-clock time proportional to the
number of *events* rather than the number of *cycles*:

* components de-activate themselves when blocked and are re-activated
  either by a scheduled wakeup (time-blocked, e.g. a 19-cycle FP add) or
  by an explicit :meth:`~repro.kernel.component.Component.wake` from a peer
  (event-blocked, e.g. waiting for a reply flit);
* when no component is active the clock jumps to the next wakeup.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.errors import DeadlockError, SimulationError
from repro.kernel.component import Component


class Simulator:
    """Global clock and scheduler for a set of :class:`Component` objects."""

    def __init__(self) -> None:
        self.cycle = 0
        self._components: list[Component] = []
        self._n_active = 0
        self._wakeups: list[tuple[int, int, Component]] = []
        self._wakeup_seq = 0
        self._running = False

    # -- registration -------------------------------------------------------

    def register(self, component: Component) -> Component:
        """Add ``component`` to the stepped set (in phase order) and return it."""
        if component.sim is not None:
            raise SimulationError(f"{component.name} already registered")
        component.attach(self)
        self._components.append(component)
        if component.active:
            self._n_active += 1
        return component

    @property
    def components(self) -> tuple[Component, ...]:
        return tuple(self._components)

    # -- activity bookkeeping (called from Component) -----------------------

    def notify_activated(self) -> None:
        self._n_active += 1

    def notify_deactivated(self) -> None:
        self._n_active -= 1
        assert self._n_active >= 0, "activity accounting underflow"

    def wake_at(self, component: Component, cycle: int) -> None:
        """Schedule ``component`` to become active at ``cycle`` (>= now)."""
        if cycle < self.cycle:
            raise SimulationError(
                f"wakeup for {component.name} at {cycle} is in the past "
                f"(now {self.cycle})"
            )
        self._wakeup_seq += 1
        heapq.heappush(self._wakeups, (cycle, self._wakeup_seq, component))

    # -- main loop -----------------------------------------------------------

    def run(
        self,
        max_cycles: int | None = None,
        until: Callable[[], bool] | None = None,
    ) -> int:
        """Advance the clock until ``until()`` is true (or ``max_cycles``).

        Returns the number of cycles elapsed during this call.  Raises
        :class:`DeadlockError` if the system goes fully idle with no pending
        wakeup while ``until`` is still false — i.e. a genuine protocol
        deadlock, with a per-component diagnostic in the message.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        start = self.cycle
        deadline = None if max_cycles is None else start + max_cycles
        wakeups = self._wakeups
        components = self._components
        try:
            while True:
                if until is not None and until():
                    break
                if deadline is not None and self.cycle >= deadline:
                    if until is None:
                        break
                    raise SimulationError(
                        f"max_cycles={max_cycles} exceeded before stop "
                        f"condition (now {self.cycle})"
                    )
                # Fast-forward over idle time.
                if self._n_active == 0:
                    if not wakeups:
                        if until is None:
                            break
                        raise DeadlockError(self._deadlock_report())
                    target = wakeups[0][0]
                    if deadline is not None and target > deadline:
                        self.cycle = deadline
                        continue
                    if target > self.cycle:
                        self.cycle = target
                # Release due wakeups.
                now = self.cycle
                while wakeups and wakeups[0][0] <= now:
                    __, __, comp = heapq.heappop(wakeups)
                    comp.wake()
                # Step every active component in phase order.
                for comp in components:
                    if comp.active:
                        comp.step(now)
                self.cycle = now + 1
        finally:
            self._running = False
        return self.cycle - start

    # -- diagnostics ----------------------------------------------------------

    def _deadlock_report(self) -> str:
        lines = [f"deadlock at cycle {self.cycle}: no active component, no wakeup"]
        for comp in self._components:
            lines.append(f"  {comp.name}: {comp.describe_state()}")
        return "\n".join(lines)
