"""No-progress watchdog: turns silent hangs into structured reports.

A deadlock the kernel can prove — empty active set, no pending wakeup —
already raises :class:`~repro.errors.DeadlockError` with per-component
diagnostics.  The failure mode the fault layer adds is subtler: a system
that is *live but stuck*, endlessly polling (reliability timers, lock
backoff, eMPI progress loops) without any flit ever moving again — e.g.
after retransmission retries were exhausted on a dead link.  Such a
system never goes wakeup-free, so it would spin to ``max_cycles``.

The watchdog is a component registered *last* (after every node, so its
checks see the cycle's final state), waking every ``budget`` cycles.  If
between two consecutive checks (1) no flit was injected, moved or
ejected and (2) no core was RUNNING and the MPMMU was idle at both
check points, it raises :class:`~repro.errors.WatchdogError` carrying
the system's full progress report.  Both predicates are supplied by the
system builder as callables, keeping the kernel free of system-layer
imports.

Timing neutrality: the watchdog's step only reads state, and its wakeups
merely add cycles to the kernel's visit schedule — they never change
what any other component does or when, so simulated cycle counts are
bit-identical with and without it.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import WatchdogError
from repro.kernel.component import Component


class ProgressWatchdog(Component):
    """Periodic liveness check over a snapshot/busy fingerprint pair."""

    def __init__(
        self,
        budget: int,
        snapshot: Callable[[], tuple],
        busy: Callable[[], bool],
        report: Callable[[], str],
    ) -> None:
        if budget <= 0:
            raise ValueError(f"watchdog budget must be positive, got {budget}")
        super().__init__("watchdog")
        self.budget = budget
        self._snapshot = snapshot
        self._busy = busy
        self._report = report
        self._last: tuple | None = None
        self._was_busy = True

    def step(self, cycle: int) -> None:
        snap = self._snapshot()
        busy = self._busy()
        if (
            self._last is not None
            and snap == self._last
            and not busy
            and not self._was_busy
        ):
            raise WatchdogError(
                f"no progress for {self.budget} cycles (watchdog fired at "
                f"cycle {cycle}): no flit moved and no core ran since the "
                f"last check\n{self._report()}"
            )
        self._last = snap
        self._was_busy = busy
        self.sleep(until=cycle + self.budget)
