"""Hardware FIFO queue model.

Every buffered structure in MEDEA — the arbiter queues of Fig. 3, the
MPMMU's Pif-Request/Pif-Data/outgoing queues, the TIE receive segments —
is an instance of :class:`Fifo`.  The model is untimed (push and pop are
performed by the owning component inside its own clocked ``step``); what it
adds over ``collections.deque`` is bounded capacity with explicit full/empty
errors plus occupancy statistics used by the reports.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generic, Iterator, TypeVar

from repro.errors import FifoEmptyError, FifoFullError

T = TypeVar("T")


class Fifo(Generic[T]):
    """A bounded (or unbounded) first-in first-out queue with statistics."""

    def __init__(self, capacity: int | None = None, name: str = "fifo") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"{name}: capacity must be >= 1 or None, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._items: deque[T] = deque()
        self.pushes = 0
        self.pops = 0
        self.max_occupancy = 0
        self.full_rejections = 0

    # -- state ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def free_slots(self) -> int | None:
        if self.capacity is None:
            return None
        return self.capacity - len(self._items)

    # -- operations -------------------------------------------------------------

    def push(self, item: T) -> None:
        items = self._items
        capacity = self.capacity
        if capacity is not None and len(items) >= capacity:
            self.full_rejections += 1
            raise FifoFullError(f"{self.name}: push on full FIFO (cap={capacity})")
        items.append(item)
        self.pushes += 1
        occupancy = len(items)
        if occupancy > self.max_occupancy:
            self.max_occupancy = occupancy

    def try_push(self, item: T) -> bool:
        """Push if space is available; return whether the push happened."""
        if self.full:
            self.full_rejections += 1
            return False
        self.push(item)
        return True

    def pop(self) -> T:
        items = self._items
        if not items:
            raise FifoEmptyError(f"{self.name}: pop on empty FIFO")
        self.pops += 1
        return items.popleft()

    def peek(self) -> T:
        if not self._items:
            raise FifoEmptyError(f"{self.name}: peek on empty FIFO")
        return self._items[0]

    def clear(self) -> None:
        self._items.clear()

    # -- reporting ---------------------------------------------------------------

    def stats_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "capacity": self.capacity,
            "pushes": self.pushes,
            "pops": self.pops,
            "max_occupancy": self.max_occupancy,
            "full_rejections": self.full_rejections,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"<Fifo {self.name} {len(self._items)}/{cap}>"
