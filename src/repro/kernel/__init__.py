"""Simulation substrate: clock, components, FIFOs, statistics, tracing.

This package is the stand-in for the authors' SystemC kernel.  It provides
a globally-clocked, cycle-level simulation loop with two optimizations that
make Python viable for multi-million-cycle runs:

* **activity gating** — only components flagged active are stepped;
* **idle fast-forward** — when no component is active the clock jumps
  straight to the earliest scheduled wakeup instead of ticking through
  empty cycles.

Both optimizations are exact: they never change observable cycle counts,
only wall-clock time (verified by the equivalence tests in
``tests/kernel/test_simulator.py``).
"""

from repro.kernel.component import Component
from repro.kernel.fifo import Fifo
from repro.kernel.simulator import Simulator
from repro.kernel.stats import CounterSet, LatencyStat
from repro.kernel.trace import Tracer

__all__ = [
    "Component",
    "CounterSet",
    "Fifo",
    "LatencyStat",
    "Simulator",
    "Tracer",
]
