"""Workloads: Jacobi, the dot-product reduction kernel, synthetic traffic."""

from repro.apps import dotproduct, jacobi, synthetic

__all__ = ["dotproduct", "jacobi", "synthetic"]
