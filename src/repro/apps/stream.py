"""Pipelined producer/consumer stream kernel.

Workers form a linear pipeline: rank 0 generates blocks of doubles, each
stage applies its own affine transform ``y = a * x + b``, and the last
rank is the consumer.  Blocks flow stage to stage while earlier stages
already work on the next block — the classic streaming pattern the TIE
message path was built for.

Collectives bracket the pipeline:

* **scatter** — rank 0 distributes each stage's ``(a, b)`` coefficients;
* **allreduce** — every stage's running sum of the values it emitted is
  sum-reduced across all ranks after the pipeline drains;
* **broadcast from the last rank** — the consumer publishes its final
  checksum to everyone (a non-zero-root broadcast).

Under ``empi`` the blocks ride the TIE streams; under ``pure_sm`` each
pipeline edge is a :class:`~repro.empi.smsync.SharedMemoryChannel`
mailbox, so every block is uncached MPMMU traffic plus flag polling —
the head-to-head the paper's hybrid claim predicts it wins.  Results
validate bit for bit against :func:`reference_stream`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.empi.collectives import (
    CollectiveAlgorithm,
    CommModel,
    make_comm,
    reference_allreduce,
)
from repro.empi.smsync import SharedMemoryChannel
from repro.errors import ConfigError
from repro.system.config import SystemConfig
from repro.system.medea import MedeaSystem


def source_value(block: int, index: int, block_values: int) -> float:
    """Deterministic source stream."""
    return math.sin(0.05 * (block * block_values + index)) + 1.25


def stage_coefficients(rank: int) -> list[float]:
    """Per-stage affine transform ``(a, b)``."""
    return [1.0 + 0.0625 * (rank + 1), 0.25 - 0.03125 * rank]


@dataclass
class StreamParams:
    """One stream experiment."""

    n_blocks: int = 6
    block_values: int = 8
    model: CommModel | str = CommModel.EMPI
    algorithm: CollectiveAlgorithm | str = CollectiveAlgorithm.LINEAR
    validate: bool = True

    def __post_init__(self) -> None:
        if self.n_blocks < 1:
            raise ConfigError("need at least one block")
        if self.block_values < 1:
            raise ConfigError("blocks need at least one value")
        self.model = CommModel.parse(self.model)
        self.algorithm = CollectiveAlgorithm.parse(self.algorithm)


@dataclass
class StreamResult:
    params: StreamParams
    config_label: str
    total_cycles: int
    pipeline_cycles: int
    cycles_per_block: float
    total: float
    checksum: float
    expected_total: float
    expected_checksum: float
    stats: dict = field(repr=False, default_factory=dict)

    @property
    def validated(self) -> bool:
        return (self.total == self.expected_total
                and self.checksum == self.expected_checksum)


def reference_stream(
    params: StreamParams, n_workers: int
) -> tuple[float, float]:
    """(allreduced total, consumer checksum) with exact operation order."""
    sums = [0.0] * n_workers
    for block in range(params.n_blocks):
        values = [
            source_value(block, i, params.block_values)
            for i in range(params.block_values)
        ]
        for rank in range(n_workers):
            a, b = stage_coefficients(rank)
            values = [a * v + b for v in values]
            block_sum = 0.0
            for v in values:
                block_sum += v
            sums[rank] += block_sum
    total = reference_allreduce(
        [[s] for s in sums], "sum", params.algorithm
    )[0]
    return total, sums[n_workers - 1]


def _make_program(params: StreamParams, rank: int, n_workers: int,
                  results: dict[int, tuple[float, float]]):
    def program(ctx):
        cost = ctx.cost
        n_values = params.block_values
        comm = make_comm(
            ctx, params.model, params.algorithm,
            max_values=max(2, n_values),
        )
        last = n_workers - 1

        # Pipeline channels. Under empi the TIE streams are the channel;
        # under pure_sm each edge gets a mailbox after the comm arena.
        inbox = outbox = None
        if params.model is CommModel.PURE_SM and n_workers > 1:
            stride = SharedMemoryChannel.footprint_for(n_values)
            base = ctx.shared_base + comm.footprint

            def channel(edge: int) -> SharedMemoryChannel:
                return SharedMemoryChannel(
                    ctx, base + edge * stride, n_values
                )

            if rank > 0:
                inbox = channel(rank - 1)
            if rank < last:
                outbox = channel(rank)

        # Coefficients arrive by scatter from rank 0.
        chunks = None
        if rank == 0:
            chunks = [stage_coefficients(r) for r in range(n_workers)]
        a, b = yield from comm.scatter(0, chunks, 2)
        yield from comm.barrier()
        if rank == 0:
            yield ctx.note("pipeline_start")

        transform_cost = n_values * (cost.fp_mul + cost.fp_add) + cost.loop_overhead
        sum_cost = n_values * cost.fp_add + cost.loop_overhead
        local_sum = 0.0
        for block in range(params.n_blocks):
            if rank == 0:
                values = [
                    source_value(block, i, n_values) for i in range(n_values)
                ]
                yield ("compute", sum_cost)  # generator loop
            elif params.model is CommModel.PURE_SM:
                values = yield from inbox.recv(n_values)
            else:
                values = yield from ctx.empi.recv_doubles(rank - 1, n_values)
            values = [a * v + b for v in values]
            yield ("compute", transform_cost)
            block_sum = 0.0
            for v in values:
                block_sum += v
            yield ("compute", sum_cost)
            local_sum += block_sum
            yield ctx.fp_add()
            if rank < last:
                if params.model is CommModel.PURE_SM:
                    yield from outbox.send(values)
                else:
                    yield from ctx.empi.send_doubles(rank + 1, values)
        if rank == last:
            yield ctx.note("pipeline_done")
        yield from comm.barrier()

        total = yield from comm.allreduce([local_sum], op="sum")
        payload = [local_sum] if rank == last else None
        checksum = yield from comm.bcast(last, payload, 1)
        results[rank] = (total[0], checksum[0])

    return program


def run_stream(config: SystemConfig, params: StreamParams,
               max_cycles: int | None = None) -> StreamResult:
    """Run one stream experiment on one architecture point."""
    params = StreamParams(
        params.n_blocks, params.block_values, params.model,
        params.algorithm, params.validate,
    )
    n_workers = config.n_workers
    results: dict[int, tuple[float, float]] = {}
    system = MedeaSystem(config)
    system.load_programs([
        _make_program(params, rank, n_workers, results)
        for rank in range(n_workers)
    ])
    total_cycles = system.run(max_cycles=max_cycles)
    start = next(
        cycle for cycle, rank, label in system.notes
        if rank == 0 and label == "pipeline_start"
    )
    done = next(
        cycle for cycle, rank, label in system.notes
        if rank == n_workers - 1 and label == "pipeline_done"
    )
    if len(set(results.values())) != 1:
        raise AssertionError(f"ranks disagree on the totals: {results}")
    total, checksum = results[0]
    expected_total, expected_checksum = (
        reference_stream(params, n_workers)
        if params.validate else (total, checksum)
    )
    return StreamResult(
        params=params,
        config_label=config.label(),
        total_cycles=total_cycles,
        pipeline_cycles=done - start,
        cycles_per_block=(done - start) / params.n_blocks,
        total=total,
        checksum=checksum,
        expected_total=expected_total,
        expected_checksum=expected_checksum,
        stats=system.collect_stats(),
    )
