"""Parallel dot product — a second workload on the MEDEA models.

The paper's future work calls for "porting and execution of standard
parallel benchmarks"; the distributed dot product is the smallest such
kernel with a global reduction, and it isolates exactly the part of a
parallel program the hybrid architecture accelerates: combining per-core
results.

Two reduction strategies:

* ``empi`` — local partial sums travel over the message-passing path
  (gather to rank 0, broadcast of the total: the eMPI allreduce);
* ``pure_sm`` — a lock-protected shared accumulator through the MPMMU,
  followed by a shared-memory barrier and an uncached read of the total.

Both are validated against a reference that replicates the accumulation
order exactly, so results match bit for bit.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.apps.jacobi.partition import Strip
from repro.empi.smsync import SharedMemoryBarrier, SharedMemoryLock
from repro.errors import ConfigError
from repro.mem.values import float_to_words, words_to_float
from repro.system.config import SystemConfig
from repro.system.medea import MedeaSystem

#: Shared-segment layout for the pure-SM reduction.
_ACCUMULATOR_OFFSET = 64   # one line past the barrier/lock area
_RESULT_LINE_BYTES = 16


class ReductionModel(enum.Enum):
    EMPI = "empi"
    PURE_SM = "pure_sm"

    @classmethod
    def parse(cls, value: "ReductionModel | str") -> "ReductionModel":
        if isinstance(value, ReductionModel):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise ConfigError(
                f"unknown reduction model {value!r}; use 'empi' or 'pure_sm'"
            ) from None


def element_values(index: int) -> tuple[float, float]:
    """Deterministic input vectors: smooth, sign-varying, exactly portable."""
    x = math.sin(0.1 * index) + 1.5
    y = math.cos(0.07 * index) - 0.25
    return x, y


def chunks_for(n_elements: int, n_workers: int) -> list[Strip]:
    """Contiguous element ranges per rank (reusing the Strip record)."""
    base = n_elements // n_workers
    extra = n_elements % n_workers
    chunks = []
    start = 0
    for rank in range(n_workers):
        count = base + (1 if rank < extra else 0)
        chunks.append(Strip(rank, start, count))
        start += count
    return chunks


def reference_dot(n_elements: int, n_workers: int) -> float:
    """The exact value the machine must produce (same summation order)."""
    total = 0.0
    for chunk in chunks_for(n_elements, n_workers):
        partial = 0.0
        for index in range(chunk.first_row, chunk.first_row + chunk.n_rows):
            x, y = element_values(index)
            partial += x * y
        total += partial
    return total


@dataclass
class DotProductParams:
    """One dot-product experiment."""

    n_elements: int = 256
    model: ReductionModel | str = ReductionModel.EMPI

    def __post_init__(self) -> None:
        if self.n_elements < 1:
            raise ConfigError("need at least one element")
        self.model = ReductionModel.parse(self.model)


@dataclass
class DotProductResult:
    params: DotProductParams
    config_label: str
    total_cycles: int
    reduction_cycles: int
    value: float
    expected: float
    stats: dict = field(repr=False, default_factory=dict)

    @property
    def validated(self) -> bool:
        return self.value == self.expected


def _make_program(params: DotProductParams, chunks: list[Strip], rank: int,
                  results: dict[int, float]):
    model = ReductionModel.parse(params.model)

    def program(ctx):
        chunk = chunks[rank]
        cost = ctx.cost
        base = ctx.private_base
        # Stage the chunk of both vectors in the private segment
        # (interleaved x/y pairs), like a host would have loaded it.
        for offset in range(chunk.n_rows):
            x, y = element_values(chunk.first_row + offset)
            yield from ctx.store_double(base + 16 * offset, x)
            yield from ctx.store_double(base + 16 * offset + 8, y)

        if model is ReductionModel.EMPI:
            barrier = ctx.empi.barrier
        else:
            sm_barrier = SharedMemoryBarrier(ctx, ctx.shared_base)
            barrier = sm_barrier.wait
        yield from barrier()
        if rank == 0:
            yield ctx.note("compute_start")

        partial = 0.0
        for offset in range(chunk.n_rows):
            x = yield from ctx.load_double(base + 16 * offset)
            y = yield from ctx.load_double(base + 16 * offset + 8)
            partial += x * y
            yield ("compute", cost.fp_mul + cost.fp_add + cost.loop_overhead)
        yield from barrier()
        if rank == 0:
            yield ctx.note("reduce_start")

        if model is ReductionModel.EMPI:
            total = yield from ctx.empi.allreduce_sum(partial)
        else:
            accumulator = ctx.shared_base + _ACCUMULATOR_OFFSET
            lock = SharedMemoryLock(ctx, accumulator + _RESULT_LINE_BYTES)
            # Rank order must match the reference's summation order, so
            # each rank waits for its turn via a turn counter.
            turn_addr = accumulator + 8
            while True:
                turn = yield ("uload", turn_addr)
                if turn == rank:
                    break
                yield ("compute", 16)
            yield from lock.acquire()
            low = yield ("uload", accumulator)
            high = yield ("uload", accumulator + 4)
            running = words_to_float(low, high)
            running += partial
            low, high = float_to_words(running)
            yield ("ustore", accumulator, low)
            yield ("ustore", accumulator + 4, high)
            yield ("ustore", turn_addr, rank + 1)
            yield ("fence",)
            yield from lock.release()
            yield from barrier()
            low = yield ("uload", accumulator)
            high = yield ("uload", accumulator + 4)
            total = words_to_float(low, high)

        if rank == 0:
            yield ctx.note("reduce_done")
        results[rank] = total

    return program


def run_dotproduct(config: SystemConfig, params: DotProductParams,
                   max_cycles: int | None = None) -> DotProductResult:
    """Run the distributed dot product on one architecture point."""
    params = DotProductParams(params.n_elements, params.model)
    chunks = chunks_for(params.n_elements, config.n_workers)
    results: dict[int, float] = {}
    system = MedeaSystem(config)
    system.load_programs([
        _make_program(params, chunks, rank, results)
        for rank in range(config.n_workers)
    ])
    total_cycles = system.run(max_cycles=max_cycles)
    marks = {label: cycle for cycle, rank, label in system.notes if rank == 0}
    values = set(results.values())
    if len(values) != 1:
        raise AssertionError(f"ranks disagree on the total: {results}")
    return DotProductResult(
        params=params,
        config_label=config.label(),
        total_cycles=total_cycles,
        reduction_cycles=marks["reduce_done"] - marks["reduce_start"],
        value=values.pop(),
        expected=reference_dot(params.n_elements, config.n_workers),
        stats=system.collect_stats(),
    )
