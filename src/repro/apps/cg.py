"""Distributed conjugate-gradient solver — the overlap proof point.

Solves ``A x = b`` for the SPD tridiagonal operator ``A = tridiag(off,
diag, off)`` (a 1-D Laplacian with a diagonal shift), row-partitioned
across the workers: rank r owns a contiguous strip of rows and the
matching entries of every CG vector.  Communication per iteration:

* **halo exchange** — the sparse matrix-vector product needs one ``p``
  value from each neighbouring rank (``isend``/``irecv`` in overlap
  mode, blocking send/recv otherwise);
* **dot products** — ``p . q`` and the residual norm are allreduces of
  one double (``iallreduce`` in overlap mode).

With ``overlap=True`` the solver posts the halo requests and computes
the *interior* SpMV rows while the NoC carries them, then overlaps the
``x`` update with the residual-norm allreduce — the textbook
compute-communication overlap schedule.  The floating-point operation
order is identical in both modes and over both programming models, so
all four variants converge **bit-identically** and validate against
:func:`reference_cg`, which replicates the partitioning, the per-row
accumulation order and the allreduce combine order exactly.

Overlap is measured, not asserted: the request layer brackets every
in-flight window and overlap region with zero-cycle notes, and
:func:`~repro.empi.requests.overlap_stats` reduces them to per-rank
overlap efficiency (the fraction of in-flight communication cycles
hidden behind compute), reported in :class:`CgResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.apps.dotproduct import chunks_for
from repro.empi.collectives import (
    CollectiveAlgorithm,
    CommModel,
    make_comm,
    reference_allreduce,
)
from repro.empi.requests import (
    OverlapStats,
    mean_overlap_efficiency,
    overlap_stats,
)
from repro.errors import ConfigError
from repro.system.config import SystemConfig
from repro.system.medea import MedeaSystem

#: The SPD operator: strictly diagonally dominant tridiagonal.
DIAG = 2.5
OFFDIAG = -1.0


def rhs_value(i: int) -> float:
    """Deterministic right-hand side: smooth, sign-varying, bit-portable."""
    return math.sin(0.17 * i) + 1.25


@dataclass
class CgParams:
    """One conjugate-gradient experiment."""

    n: int = 64
    iterations: int = 10
    model: CommModel | str = CommModel.EMPI
    algorithm: CollectiveAlgorithm | str = CollectiveAlgorithm.LINEAR
    overlap: bool = False
    #: Compute ops between progress rounds inside overlap regions; 8 is
    #: the measured sweet spot on the reference mesh (frequent enough to
    #: keep collectives moving, rare enough not to tax the compute).
    poll_interval: int = 8
    validate: bool = True

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigError(f"system must be at least 1x1, got {self.n}")
        if self.iterations < 1:
            raise ConfigError("need at least one CG iteration")
        if self.poll_interval < 1:
            raise ConfigError("poll_interval must be >= 1")
        self.model = CommModel.parse(self.model)
        self.algorithm = CollectiveAlgorithm.parse(self.algorithm)


@dataclass
class CgResult:
    params: CgParams
    config_label: str
    total_cycles: int
    solve_cycles: int
    x: list[float]
    expected_x: list[float]
    rr_history: list[float]
    expected_rr_history: list[float]
    overlap_per_rank: dict[int, OverlapStats]
    stats: dict = field(repr=False, default_factory=dict)

    @property
    def validated(self) -> bool:
        return (
            self.x == self.expected_x
            and self.rr_history == self.expected_rr_history
        )

    @property
    def converged(self) -> bool:
        """Residual norm strictly decreased over the run."""
        return self.rr_history[-1] < self.rr_history[0]

    @property
    def overlap_efficiency(self) -> float:
        return mean_overlap_efficiency(self.overlap_per_rank)


def reference_cg(
    n: int,
    n_workers: int,
    iterations: int,
    algorithm: CollectiveAlgorithm | str = CollectiveAlgorithm.LINEAR,
) -> tuple[list[float], list[float]]:
    """The exact ``x`` and residual history the machine must produce.

    Replicates the distributed algorithm operation for operation: the
    same row partition, the same per-row accumulation order (diagonal,
    then left neighbour, then right) and the same allreduce combine
    order — so the machine result validates bit for bit whatever the
    programming model or blocking mode.
    """
    algorithm = CollectiveAlgorithm.parse(algorithm)
    chunks = chunks_for(n, n_workers)
    x = [0.0] * n
    b = [rhs_value(i) for i in range(n)]
    r = list(b)
    p = list(b)
    q = [0.0] * n

    def allreduce_scalar(partials: list[float]) -> float:
        return reference_allreduce(
            [[value] for value in partials], "sum", algorithm
        )[0]

    def local_dot(u: list[float], v: list[float]) -> list[float]:
        partials = []
        for chunk in chunks:
            acc = 0.0
            for i in range(chunk.first_row, chunk.first_row + chunk.n_rows):
                acc += u[i] * v[i]
            partials.append(acc)
        return partials

    rr = allreduce_scalar(local_dot(r, r))
    history = [rr]
    for __ in range(iterations):
        for i in range(n):
            acc = DIAG * p[i]
            if i > 0:
                acc += OFFDIAG * p[i - 1]
            if i < n - 1:
                acc += OFFDIAG * p[i + 1]
            q[i] = acc
        pq = allreduce_scalar(local_dot(p, q))
        alpha = rr / pq
        for i in range(n):
            r[i] = r[i] - alpha * q[i]
        rr_new = allreduce_scalar(local_dot(r, r))
        for i in range(n):
            x[i] = x[i] + alpha * p[i]
        beta = rr_new / rr
        for i in range(n):
            p[i] = r[i] + beta * p[i]
        rr = rr_new
        history.append(rr)
    return x, history


def _make_program(params: CgParams, chunks, rank: int,
                  results: dict[int, list[float]],
                  rr_out: dict[int, list[float]]):
    def program(ctx):
        chunk = chunks[rank]
        first = chunk.first_row
        k = chunk.n_rows
        n = params.n
        cost = ctx.cost
        comm = make_comm(
            ctx, params.model, params.algorithm, max_values=1, p2p_values=1
        )
        has_left = first > 0
        has_right = first + k < n
        left_rank = rank - 1
        right_rank = rank + 1
        # Private staging: x, r, p, q strips back to back.
        base = ctx.private_base
        x_a = base
        r_a = base + 8 * k
        p_a = base + 16 * k
        q_a = base + 24 * k
        mac = cost.fp_mul + cost.fp_add + cost.loop_overhead

        def compute_row(i: int, halo_left, halo_right):
            """One SpMV row: q[i] = (A p)[i], fixed accumulation order."""
            p_i = yield from ctx.load_double(p_a + 8 * i)
            p_left = p_right = None
            if i > 0:
                p_left = yield from ctx.load_double(p_a + 8 * (i - 1))
            elif has_left:
                p_left = halo_left
            if i < k - 1:
                p_right = yield from ctx.load_double(p_a + 8 * (i + 1))
            elif has_right:
                p_right = halo_right
            acc = DIAG * p_i
            neighbours = 0
            if p_left is not None:
                acc += OFFDIAG * p_left
                neighbours += 1
            if p_right is not None:
                acc += OFFDIAG * p_right
                neighbours += 1
            yield (
                "compute",
                cost.fp_mul
                + neighbours * (cost.fp_mul + cost.fp_add)
                + cost.loop_overhead,
            )
            yield from ctx.store_double(q_a + 8 * i, acc)

        def interior_rows():
            for i in range(1, k - 1):
                yield from compute_row(i, None, None)

        def local_dot(u_a: int, v_a: int):
            acc = 0.0
            for i in range(k):
                u_i = yield from ctx.load_double(u_a + 8 * i)
                v_i = yield from ctx.load_double(v_a + 8 * i)
                acc += u_i * v_i
                yield ("compute", mac)
            return acc

        def allreduce_scalar(value: float):
            result = yield from comm.allreduce([value])
            return result[0]

        def x_update(alpha: float):
            for i in range(k):
                x_i = yield from ctx.load_double(x_a + 8 * i)
                p_i = yield from ctx.load_double(p_a + 8 * i)
                x_i = x_i + alpha * p_i
                yield ("compute", mac)
                yield from ctx.store_double(x_a + 8 * i, x_i)

        # -- init: x = 0, r = p = b --------------------------------------
        for i in range(k):
            b_i = rhs_value(first + i)
            yield from ctx.store_double(x_a + 8 * i, 0.0)
            yield from ctx.store_double(r_a + 8 * i, b_i)
            yield from ctx.store_double(p_a + 8 * i, b_i)
            yield ("compute", cost.loop_overhead)
        yield from comm.barrier()
        if rank == 0:
            yield ctx.note("solve_start")

        rr_local = yield from local_dot(r_a, r_a)
        rr = yield from allreduce_scalar(rr_local)
        rr_history = [rr]

        for __ in range(params.iterations):
            # -- SpMV q = A p, with halo exchange ------------------------
            halo_left = halo_right = None
            if params.overlap:
                recv_left = recv_right = None
                send_requests = []
                if has_left:
                    recv_left = yield from comm.irecv(left_rank, 1)
                if has_right:
                    recv_right = yield from comm.irecv(right_rank, 1)
                if has_left:
                    p_0 = yield from ctx.load_double(p_a)
                    request = yield from comm.isend(left_rank, [p_0])
                    send_requests.append(request)
                if has_right:
                    p_k = yield from ctx.load_double(p_a + 8 * (k - 1))
                    request = yield from comm.isend(right_rank, [p_k])
                    send_requests.append(request)
                yield from comm.overlap(
                    interior_rows(), params.poll_interval
                )
                if recv_left is not None:
                    halo_left = (yield from comm.wait(recv_left))[0]
                if recv_right is not None:
                    halo_right = (yield from comm.wait(recv_right))[0]
                yield from comm.waitall(send_requests)
                for i in ([0] if k == 1 else [0, k - 1]):
                    yield from compute_row(i, halo_left, halo_right)
            else:
                if has_left:
                    p_0 = yield from ctx.load_double(p_a)
                    yield from comm.send(left_rank, [p_0])
                if has_right:
                    p_k = yield from ctx.load_double(p_a + 8 * (k - 1))
                    yield from comm.send(right_rank, [p_k])
                if has_left:
                    halo_left = (yield from comm.recv(left_rank, 1))[0]
                if has_right:
                    halo_right = (yield from comm.recv(right_rank, 1))[0]
                for i in range(k):
                    yield from compute_row(i, halo_left, halo_right)

            # -- alpha = rr / (p . q) ------------------------------------
            pq_local = yield from local_dot(p_a, q_a)
            pq = yield from allreduce_scalar(pq_local)
            alpha = rr / pq
            yield ("compute", cost.fp_div)

            # -- r -= alpha q, then the residual norm --------------------
            for i in range(k):
                r_i = yield from ctx.load_double(r_a + 8 * i)
                q_i = yield from ctx.load_double(q_a + 8 * i)
                r_i = r_i - alpha * q_i
                yield ("compute", mac)
                yield from ctx.store_double(r_a + 8 * i, r_i)
            rr_new_local = yield from local_dot(r_a, r_a)

            # -- x += alpha p, overlapped with the norm allreduce --------
            if params.overlap:
                request = yield from comm.iallreduce([rr_new_local])
                yield from comm.overlap(
                    x_update(alpha), params.poll_interval
                )
                rr_new = (yield from comm.wait(request))[0]
            else:
                rr_new = yield from allreduce_scalar(rr_new_local)
                yield from x_update(alpha)

            # -- p = r + beta p ------------------------------------------
            beta = rr_new / rr
            yield ("compute", cost.fp_div)
            for i in range(k):
                r_i = yield from ctx.load_double(r_a + 8 * i)
                p_i = yield from ctx.load_double(p_a + 8 * i)
                p_i = r_i + beta * p_i
                yield ("compute", mac)
                yield from ctx.store_double(p_a + 8 * i, p_i)
            rr = rr_new
            rr_history.append(rr)

        yield from comm.barrier()
        if rank == 0:
            yield ctx.note("solve_done")
        x_final = []
        for i in range(k):
            x_i = yield from ctx.load_double(x_a + 8 * i)
            x_final.append(x_i)
        results[rank] = x_final
        rr_out[rank] = rr_history

    return program


def run_cg(config: SystemConfig, params: CgParams,
           max_cycles: int | None = None,
           observer=None) -> CgResult:
    """Run one CG experiment on one architecture point.

    ``observer``, when given, is called with the built
    :class:`MedeaSystem` before the run starts — the hook trace/telemetry
    tooling uses to reach the notes, tracer and registry afterwards.
    """
    params = CgParams(
        params.n, params.iterations, params.model, params.algorithm,
        params.overlap, params.poll_interval, params.validate,
    )
    if params.n < config.n_workers:
        raise ConfigError(
            f"CG system of {params.n} rows cannot occupy "
            f"{config.n_workers} workers"
        )
    chunks = chunks_for(params.n, config.n_workers)
    results: dict[int, list[float]] = {}
    rr_out: dict[int, list[float]] = {}
    system = MedeaSystem(config)
    system.load_programs([
        _make_program(params, chunks, rank, results, rr_out)
        for rank in range(config.n_workers)
    ])
    if observer is not None:
        observer(system)
    total_cycles = system.run(max_cycles=max_cycles)
    marks = {label: cycle for cycle, rank, label in system.notes if rank == 0}
    x = [value for rank in range(config.n_workers) for value in results[rank]]
    if params.validate:
        expected_x, expected_rr = reference_cg(
            params.n, config.n_workers, params.iterations, params.algorithm
        )
    else:
        expected_x, expected_rr = x, rr_out[0]
    return CgResult(
        params=params,
        config_label=config.label(),
        total_cycles=total_cycles,
        solve_cycles=marks["solve_done"] - marks["solve_start"],
        x=x,
        expected_x=expected_x,
        rr_history=rr_out[0],
        expected_rr_history=expected_rr,
        overlap_per_rank=overlap_stats(system.notes, config.n_workers),
        stats=system.collect_stats(),
    )
