"""Synthetic NoC traffic: characterize the deflection-routed fabric alone.

The paper's Section II-A claims rest on the authors' earlier trace-driven
NoC study (ref [15]): deflection routing delivers everything, with only
sporadic high-latency outliers and no livelock in practice.  This module
reproduces that style of experiment: Bernoulli sources inject single-flit
packets under uniform-random, hotspot, transpose or neighbor patterns
directly into a bare fabric (no PEs, no memory system), and the fabric's
latency statistics answer the latency/throughput/outlier questions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.kernel.component import Component
from repro.kernel.simulator import Simulator
from repro.noc.flit import Flit
from repro.noc.network import NocFabric
from repro.noc.packet import PacketType
from repro.noc.topology import FoldedTorusTopology, MeshTopology, Topology

PATTERNS = ("uniform", "hotspot", "transpose", "neighbor")


@dataclass
class TrafficStats:
    """Outcome of one synthetic-traffic run."""

    offered_rate: float
    cycles: int
    injected: int
    ejected: int
    in_flight: int
    mean_latency: float
    max_latency: int
    p99_latency_bound: int | None
    deflections: int
    deflections_per_flit: float
    injection_stalls: int
    throughput: float  # ejected flits per node per cycle
    per_source_sent: list[int] = field(repr=False, default_factory=list)
    #: Per-link/per-switch matrices (``NocFabric.spatial_dict`` shape);
    #: None unless the run was asked to keep the spatial view.
    spatial: dict | None = field(repr=False, default=None)

    @property
    def all_delivered(self) -> bool:
        return self.injected == self.ejected and self.in_flight == 0


class _TrafficSource(Component):
    """Bernoulli single-flit injector at one node."""

    def __init__(
        self,
        node: int,
        fabric: NocFabric,
        rate: float,
        pattern: str,
        stop_at: int,
        rng: random.Random,
    ) -> None:
        super().__init__(f"src[{node}]")
        self.node = node
        self.fabric = fabric
        self.ports = fabric.ports_of(node)
        self.ports.eject.owner = self
        self.rate = rate
        self.pattern = pattern
        self.stop_at = stop_at
        self.rng = rng
        self.sent = 0
        self.active = True  # sources run from cycle 0

    def _pick_destination(self) -> int:
        topo = self.fabric.topology
        n = topo.n_nodes
        if self.pattern == "uniform":
            dst = self.rng.randrange(n - 1)
            return dst if dst < self.node else dst + 1
        if self.pattern == "hotspot":
            # Half the traffic aims at node 0 (the MPMMU position).
            if self.node != 0 and self.rng.random() < 0.5:
                return 0
            dst = self.rng.randrange(n - 1)
            return dst if dst < self.node else dst + 1
        if self.pattern == "transpose":
            x, y = topo.coords_of(self.node)
            return topo.node_at(y % topo.width, x % topo.height)
        if self.pattern == "neighbor":
            return topo.neighbor_table[self.node][self.rng.randrange(4) % 4] % n
        raise ConfigError(f"unknown pattern {self.pattern!r}")

    def step(self, cycle: int) -> None:
        # Drain anything delivered to us (sink role).
        queue = self.ports.eject.queue
        while queue:
            queue.pop()
        if cycle >= self.stop_at:
            if self.fabric.flits_in_network == 0:
                self.sleep()
            return
        if not self.ports.inject.busy and self.rng.random() < self.rate:
            dst = self._pick_destination()
            if dst == self.node or dst < 0:
                return
            flit = Flit(dst=dst, src=self.node, ptype=PacketType.MESSAGE,
                        data=self.sent & 0xFFFF_FFFF)
            accepted = self.ports.inject.try_inject(flit)
            assert accepted
            self.sent += 1


def run_synthetic_traffic(
    width: int = 4,
    height: int = 4,
    rate: float = 0.1,
    cycles: int = 2000,
    pattern: str = "uniform",
    topology_kind: str = "folded_torus",
    drain_cycles: int = 2000,
    seed: int = 1,
    spatial: bool = False,
) -> TrafficStats:
    """Inject Bernoulli traffic for ``cycles``, then drain; return stats.

    ``spatial=True`` keeps the fabric's per-link/per-switch telemetry
    matrices and attaches them to the result — the data behind the DSE
    report heatmaps.  (Bookkeeping only; cycle counts are unaffected.)
    """
    if pattern not in PATTERNS:
        raise ConfigError(f"pattern must be one of {PATTERNS}, got {pattern!r}")
    if not (0.0 <= rate <= 1.0):
        raise ConfigError(f"injection rate must be in [0, 1], got {rate}")
    topology: Topology
    if topology_kind == "mesh":
        topology = MeshTopology(width, height)
    else:
        topology = FoldedTorusTopology(width, height)
    sim = Simulator()
    fabric = NocFabric(topology)
    if spatial:
        fabric.enable_spatial()
    sim.register(fabric)
    sources = []
    for node in range(topology.n_nodes):
        source = _TrafficSource(
            node, fabric, rate, pattern, stop_at=cycles,
            rng=random.Random(seed * 100_003 + node),
        )
        sim.register(source)
        sources.append(source)
    sim.run(max_cycles=cycles + drain_cycles)

    injected = fabric.stats.get("flits_injected")
    ejected = fabric.stats.get("flits_ejected")
    latency = fabric.latency
    deflections = fabric.stats.get("deflections")
    return TrafficStats(
        offered_rate=rate,
        cycles=cycles,
        injected=injected,
        ejected=ejected,
        in_flight=fabric.flits_in_network,
        mean_latency=latency.mean,
        max_latency=latency.max or 0,
        p99_latency_bound=latency.percentile_bound(0.99),
        deflections=deflections,
        deflections_per_flit=deflections / ejected if ejected else 0.0,
        injection_stalls=fabric.stats.get("injection_stalls"),
        throughput=ejected / (cycles * topology.n_nodes) if cycles else 0.0,
        per_source_sent=[source.sent for source in sources],
        spatial=fabric.spatial_dict(),
    )


def latency_throughput_sweep(
    rates: tuple[float, ...] = (0.02, 0.05, 0.1, 0.2, 0.3, 0.45),
    **kwargs: object,
) -> list[TrafficStats]:
    """The classic NoC load/latency curve, one run per offered rate."""
    return [run_synthetic_traffic(rate=rate, **kwargs) for rate in rates]


@dataclass
class SyntheticParams:
    """One synthetic-traffic point, sweep-service style.

    The params-dataclass face of :func:`run_synthetic_traffic`, so NoC
    characterization sweeps ride the same declarative
    :class:`~repro.dse.space.SweepSpace` + executor machinery (and result
    cache keys) as every architecture sweep.
    """

    rate: float = 0.1
    pattern: str = "uniform"
    cycles: int = 2000
    width: int = 4
    height: int = 4
    topology_kind: str = "folded_torus"
    drain_cycles: int = 2000
    seed: int = 1
    spatial: bool = False


def run_synthetic_point(params: SyntheticParams) -> TrafficStats:
    """Evaluate one :class:`SyntheticParams` point."""
    return run_synthetic_traffic(
        width=params.width,
        height=params.height,
        rate=params.rate,
        cycles=params.cycles,
        pattern=params.pattern,
        topology_kind=params.topology_kind,
        drain_cycles=params.drain_cycles,
        seed=params.seed,
        spatial=params.spatial,
    )
