"""Golden numpy reference for the Jacobi solver.

The simulated programs replicate this computation *operation for
operation* with identical IEEE-754 evaluation order, so results must match
bit-for-bit — any divergence indicates a protocol or coherence bug in the
simulated machine, not numerical noise.

Evaluation order contract (kept in sync with the programs):
``value = (((up + down) + left) + right) * 0.25``.
"""

from __future__ import annotations

import numpy as np


def initial_grid(n: int) -> np.ndarray:
    """Deterministic Dirichlet problem: hot top edge, graded side walls."""
    if n < 3:
        raise ValueError(f"grid must be at least 3x3, got {n}")
    grid = np.zeros((n, n), dtype=np.float64)
    grid[:, 0] = 0.75
    grid[:, -1] = 0.25
    grid[0, :] = 1.0
    grid[-1, :] = -0.5
    return grid


def step_reference(grid: np.ndarray) -> np.ndarray:
    """One Jacobi sweep with the contract's FP evaluation order."""
    new = grid.copy()
    acc = grid[:-2, 1:-1] + grid[2:, 1:-1]
    acc = acc + grid[1:-1, :-2]
    acc = acc + grid[1:-1, 2:]
    new[1:-1, 1:-1] = acc * 0.25
    return new


def jacobi_reference(grid: np.ndarray, iterations: int) -> np.ndarray:
    """``iterations`` Jacobi sweeps from ``grid`` (input untouched)."""
    current = grid
    for __ in range(iterations):
        current = step_reference(current)
    return current


def stencil(up: float, down: float, left: float, right: float) -> float:
    """Scalar stencil with the exact reference evaluation order."""
    acc = up + down
    acc = acc + left
    acc = acc + right
    return acc * 0.25
