"""The three Jacobi programming models as PE programs.

All variants compute the identical stencil with the identical IEEE
evaluation order (see :mod:`repro.apps.jacobi.reference`); they differ
only in where data lives and how workers synchronize — which is exactly
the axis the paper evaluates.

Memory layouts (shared by the driver for validation):

* shared models — grid A then grid B in the shared segment after a 64-byte
  sync area; rows padded to whole 16-byte cache lines so no line is ever
  shared between two writers (the software coherence protocol of Section
  II-E requires exclusive line ownership);
* hybrid_full — each worker stores its strip (owned rows plus one halo
  row above and below) twice in its *private* segment.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Generator

from repro.apps.jacobi.partition import Strip, next_owner, prev_owner
from repro.apps.jacobi.reference import initial_grid, stencil
from repro.empi.smsync import SharedMemoryBarrier
from repro.errors import ConfigError
from repro.pe.program import ProgramContext

#: Bytes reserved at the bottom of the shared segment for SM-sync state.
SYNC_AREA_BYTES = 64


class JacobiModel(enum.Enum):
    HYBRID_FULL = "hybrid_full"
    HYBRID_SYNC = "hybrid_sync"
    PURE_SM = "pure_sm"

    @classmethod
    def parse(cls, value: "JacobiModel | str") -> "JacobiModel":
        if isinstance(value, JacobiModel):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise ConfigError(
                f"unknown Jacobi model {value!r}; use "
                f"'hybrid_full', 'hybrid_sync' or 'pure_sm'"
            ) from None


def row_stride(n: int) -> int:
    """Row pitch in bytes: n doubles padded up to whole cache lines."""
    return (n * 8 + 15) & ~15


def shared_grid_bases(n: int, shared_base: int) -> tuple[int, int]:
    """(grid A base, grid B base) inside the shared segment."""
    grid_bytes = n * row_stride(n)
    base_a = shared_base + SYNC_AREA_BYTES
    return base_a, base_a + grid_bytes


def strip_grid_bases(n: int, n_rows: int, private_base: int) -> tuple[int, int]:
    """(grid A base, grid B base) of a worker's private strip storage."""
    strip_bytes = (n_rows + 2) * row_stride(n)
    return private_base, private_base + strip_bytes


def make_jacobi_program(
    model: JacobiModel | str,
    n: int,
    iterations: int,
    strips: list[Strip],
    rank: int,
    write_back: bool = True,
    sm_poll_backoff: int = 24,
    note_rank: int = 0,
    lock_writes: bool | None = None,
) -> Callable[[ProgramContext], Generator]:
    """Build the program factory for one rank of the chosen model.

    ``lock_writes`` controls the Section II-C shared-write protocol (lock
    line -> write -> flush -> unlock).  It defaults to the model's natural
    setting: required in ``pure_sm`` (nothing else orders accesses), and
    skipped in ``hybrid_sync`` where the message-passing barrier separates
    the producer and consumer phases — the very optimization the paper's
    hybrid approach enables.
    """
    model = JacobiModel.parse(model)
    if model is JacobiModel.HYBRID_FULL:
        return _hybrid_full_factory(n, iterations, strips, rank, note_rank)
    if lock_writes is None:
        lock_writes = model is JacobiModel.PURE_SM
    return _shared_memory_factory(
        model, n, iterations, strips, rank, write_back, sm_poll_backoff,
        note_rank, lock_writes,
    )


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _load_row(ctx: ProgramContext, row_addr: int, n: int) -> Generator:
    """Load one full row of doubles through the cache."""
    values = []
    for j in range(n):
        value = yield from ctx.load_double(row_addr + j * 8)
        values.append(value)
    return values


def _point_cycles(ctx: ProgramContext) -> int:
    """FP + loop cost of one stencil update (3 adds, 1 mul, bookkeeping)."""
    cost = ctx.cost
    return 3 * cost.fp_add + cost.fp_mul + cost.loop_overhead


# ---------------------------------------------------------------------------
# hybrid_full: private strips + message-passing halo exchange + eMPI barrier
# ---------------------------------------------------------------------------


def _hybrid_full_factory(
    n: int, iterations: int, strips: list[Strip], rank: int, note_rank: int
) -> Callable[[ProgramContext], Generator]:
    def program(ctx: ProgramContext) -> Generator:
        empi = ctx.empi
        assert empi is not None
        strip = strips[rank]
        k = strip.n_rows
        stride = row_stride(n)
        up = prev_owner(strips, rank)
        down = next_owner(strips, rank)
        grid0 = initial_grid(n)

        if k:
            base_a, base_b = strip_grid_bases(n, k, ctx.private_base)
            # Initialize grid A fully (owned rows + the two halo rows).
            for r in range(k + 2):
                global_row = strip.first_row - 1 + r
                for j in range(n):
                    yield from ctx.store_double(
                        base_a + r * stride + j * 8, float(grid0[global_row, j])
                    )
            # Grid B only needs the cells the stencil reads but never
            # writes: global boundary rows and the two boundary columns.
            for r in range(k + 2):
                global_row = strip.first_row - 1 + r
                columns = range(n) if global_row in (0, n - 1) else (0, n - 1)
                for j in columns:
                    yield from ctx.store_double(
                        base_b + r * stride + j * 8, float(grid0[global_row, j])
                    )
        else:
            base_a = base_b = ctx.private_base

        yield from empi.barrier()
        if rank == note_rank:
            yield ctx.note("start")

        point_cost = _point_cycles(ctx)
        row_cost = ctx.cost.loop_overhead
        cur, nxt = base_a, base_b
        for t in range(1, iterations + 1):
            if k:
                # Halo exchange: edge rows of the read grid travel as eMPI
                # messages; sends complete locally before the receives
                # block, so the pairwise exchange cannot deadlock.
                if up is not None:
                    row = yield from _load_row(ctx, cur + stride, n)
                    yield from empi.send_doubles(up, row)
                if down is not None:
                    row = yield from _load_row(ctx, cur + k * stride, n)
                    yield from empi.send_doubles(down, row)
                halo_above = halo_below = None
                if up is not None:
                    halo_above = yield from empi.recv_doubles(up, n)
                if down is not None:
                    halo_below = yield from empi.recv_doubles(down, n)

                for r in range(1, k + 1):
                    yield ("compute", row_cost)
                    use_halo_up = r == 1 and halo_above is not None
                    use_halo_down = r == k and halo_below is not None
                    row_above = cur + (r - 1) * stride
                    row_below = cur + (r + 1) * stride
                    row_mine = cur + r * stride
                    row_out = nxt + r * stride
                    for j in range(1, n - 1):
                        if use_halo_up:
                            up_v = halo_above[j]
                            yield ("compute", 1)  # receive-buffer read
                        else:
                            up_v = yield from ctx.load_double(row_above + j * 8)
                        if use_halo_down:
                            down_v = halo_below[j]
                            yield ("compute", 1)
                        else:
                            down_v = yield from ctx.load_double(row_below + j * 8)
                        left_v = yield from ctx.load_double(row_mine + (j - 1) * 8)
                        right_v = yield from ctx.load_double(row_mine + (j + 1) * 8)
                        value = stencil(up_v, down_v, left_v, right_v)
                        yield ("compute", point_cost)
                        yield from ctx.store_double(row_out + j * 8, value)
            yield from empi.barrier()
            if rank == note_rank:
                yield ctx.note(f"iter:{t}")
            cur, nxt = nxt, cur

    return program


# ---------------------------------------------------------------------------
# hybrid_sync / pure_sm: shared grids + flush/DII protocol
# ---------------------------------------------------------------------------


def _shared_memory_factory(
    model: JacobiModel,
    n: int,
    iterations: int,
    strips: list[Strip],
    rank: int,
    write_back: bool,
    sm_poll_backoff: int,
    note_rank: int,
    lock_writes: bool,
) -> Callable[[ProgramContext], Generator]:
    def program(ctx: ProgramContext) -> Generator:
        strip = strips[rank]
        k = strip.n_rows
        stride = row_stride(n)
        base_a, base_b = shared_grid_bases(n, ctx.shared_base)
        up = prev_owner(strips, rank)
        down = next_owner(strips, rank)
        grid0 = initial_grid(n)

        if model is JacobiModel.PURE_SM:
            sm_barrier = SharedMemoryBarrier(
                ctx, ctx.shared_base, poll_backoff=sm_poll_backoff
            )
            barrier = sm_barrier.wait
        else:
            empi = ctx.empi
            assert empi is not None
            barrier = empi.barrier

        # Storage set: owned interior rows, plus the global boundary rows
        # adjacent to this strip (someone must initialize them).
        init_rows: list[int] = []
        if k:
            if strip.first_row == 1:
                init_rows.append(0)
            init_rows.extend(range(strip.first_row, strip.first_row + k))
            if strip.last_row == n - 2:
                init_rows.append(n - 1)
        for i in init_rows:
            for j in range(n):
                yield from ctx.store_double(
                    base_a + i * stride + j * 8, float(grid0[i, j])
                )
            columns = range(n) if i in (0, n - 1) else (0, n - 1)
            for j in columns:
                yield from ctx.store_double(
                    base_b + i * stride + j * 8, float(grid0[i, j])
                )
        if write_back:
            # Producer obligation (Section II-E): flush what others read.
            for i in init_rows:
                yield from ctx.flush_range(base_a + i * stride, n * 8)
                yield from ctx.flush_range(base_b + i * stride, n * 8)

        yield from barrier()
        if rank == note_rank:
            yield ctx.note("start")

        point_cost = _point_cycles(ctx)
        row_cost = ctx.cost.loop_overhead
        cur, nxt = base_a, base_b
        for t in range(1, iterations + 1):
            if k:
                # Consumer obligation: invalidate the halo rows a neighbor
                # rewrote last iteration before reading them.
                if up is not None:
                    yield from ctx.invalidate_range(
                        cur + (strip.first_row - 1) * stride, n * 8
                    )
                if down is not None:
                    yield from ctx.invalidate_range(
                        cur + (strip.last_row + 1) * stride, n * 8
                    )
                for i in range(strip.first_row, strip.last_row + 1):
                    yield ("compute", row_cost)
                    row_above = cur + (i - 1) * stride
                    row_below = cur + (i + 1) * stride
                    row_mine = cur + i * stride
                    row_out = nxt + i * stride
                    if lock_writes:
                        # Section II-C write protocol: lock the output
                        # line, write the points it covers, flush, unlock.
                        # One 16-byte line holds two doubles, so the locked
                        # sections advance two columns at a time.
                        for line_start in range(0, n, 2):
                            columns = [
                                j for j in (line_start, line_start + 1)
                                if 1 <= j <= n - 2
                            ]
                            if not columns:
                                continue
                            line_addr = row_out + line_start * 8
                            yield ("lock", line_addr)
                            for j in columns:
                                up_v = yield from ctx.load_double(row_above + j * 8)
                                down_v = yield from ctx.load_double(row_below + j * 8)
                                left_v = yield from ctx.load_double(
                                    row_mine + (j - 1) * 8
                                )
                                right_v = yield from ctx.load_double(
                                    row_mine + (j + 1) * 8
                                )
                                value = stencil(up_v, down_v, left_v, right_v)
                                yield ("compute", point_cost)
                                yield from ctx.store_double(row_out + j * 8, value)
                            if write_back:
                                yield ("flush", line_addr)
                            yield ("unlock", line_addr)
                    else:
                        for j in range(1, n - 1):
                            up_v = yield from ctx.load_double(row_above + j * 8)
                            down_v = yield from ctx.load_double(row_below + j * 8)
                            left_v = yield from ctx.load_double(row_mine + (j - 1) * 8)
                            right_v = yield from ctx.load_double(row_mine + (j + 1) * 8)
                            value = stencil(up_v, down_v, left_v, right_v)
                            yield ("compute", point_cost)
                            yield from ctx.store_double(row_out + j * 8, value)
                if write_back and not lock_writes:
                    # Only the rows a neighbor will read need flushing.
                    edge_rows = set()
                    if up is not None:
                        edge_rows.add(strip.first_row)
                    if down is not None:
                        edge_rows.add(strip.last_row)
                    for i in sorted(edge_rows):
                        yield from ctx.flush_range(nxt + i * stride, n * 8)
            yield from barrier()
            if rank == note_rank:
                yield ctx.note(f"iter:{t}")
            cur, nxt = nxt, cur

    return program
