"""Jacobi experiment driver: build, run, measure, validate.

The paper measures "execution time in clock cycles for an iteration of the
Jacobi algorithm after cache warm-up" (Fig. 6).  The driver reproduces
that protocol: rank 0 records a note at the end of every iteration's
barrier; per-iteration cycles are the differences; the reported figure is
the mean over the post-warm-up iterations.

Every run is validated against the numpy reference bit-for-bit unless
explicitly disabled, so performance numbers can never come from a machine
that silently computed the wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.jacobi.models import (
    JacobiModel,
    make_jacobi_program,
    row_stride,
    shared_grid_bases,
    strip_grid_bases,
)
from repro.apps.jacobi.partition import Strip, partition_interior
from repro.apps.jacobi.reference import initial_grid, jacobi_reference
from repro.cache.l1 import WritePolicy
from repro.errors import ConfigError, SimulationError
from repro.system.config import SystemConfig
from repro.system.medea import MedeaSystem


@dataclass
class JacobiParams:
    """One Jacobi experiment: grid size, iteration counts, model."""

    n: int = 16
    iterations: int = 3
    warmup: int = 1
    model: JacobiModel | str = JacobiModel.HYBRID_FULL
    validate: bool = True
    sm_poll_backoff: int = 24
    #: None = the model's natural default (II-C locking only in pure_sm).
    lock_writes: bool | None = None

    def __post_init__(self) -> None:
        if self.n < 3:
            raise ConfigError(f"grid must be at least 3x3, got {self.n}")
        if self.iterations < 1:
            raise ConfigError("need at least one iteration")
        if not (0 <= self.warmup < self.iterations):
            raise ConfigError(
                f"warmup ({self.warmup}) must be < iterations ({self.iterations})"
            )
        self.model = JacobiModel.parse(self.model)


@dataclass
class JacobiResult:
    """Everything measured from one run."""

    params: JacobiParams
    config_label: str
    total_cycles: int
    iteration_cycles: list[int]
    cycles_per_iteration: float
    validated: bool
    max_abs_error: float
    stats: dict = field(repr=False, default_factory=dict)

    @property
    def measured_iterations(self) -> list[int]:
        return self.iteration_cycles[self.params.warmup :]


def required_memory_ok(config: SystemConfig, params: JacobiParams) -> None:
    """Fail early when the configured segments cannot hold the problem."""
    stride = row_stride(params.n)
    model = JacobiModel.parse(params.model)
    if model is JacobiModel.HYBRID_FULL:
        strips = partition_interior(params.n, config.n_workers)
        worst_rows = max(strip.n_rows for strip in strips) + 2
        needed = 2 * worst_rows * stride
        if needed > config.private_size:
            raise ConfigError(
                f"private segment of {config.private_size} bytes cannot hold "
                f"two {worst_rows}-row strips ({needed} bytes)"
            )
    else:
        needed = 64 + 2 * params.n * stride
        if needed > config.shared_size:
            raise ConfigError(
                f"shared segment of {config.shared_size} bytes cannot hold "
                f"two {params.n}x{params.n} grids ({needed} bytes)"
            )


def run_jacobi(
    config: SystemConfig,
    params: JacobiParams,
    max_cycles: int | None = None,
    keep_system: bool = False,
    observer=None,
) -> JacobiResult:
    """Run one Jacobi experiment on one architecture point.

    ``observer``, when given, is called with the built
    :class:`MedeaSystem` before the run, so telemetry and attribution
    tooling can inspect it afterwards (the same hook ``run_cg`` and
    ``run_collective_bench`` expose).
    """
    model = JacobiModel.parse(params.model)
    required_memory_ok(config, params)
    strips = partition_interior(params.n, config.n_workers)
    write_back = config.policy is WritePolicy.WRITE_BACK
    factories = [
        make_jacobi_program(
            model,
            params.n,
            params.iterations,
            strips,
            rank,
            write_back=write_back,
            sm_poll_backoff=params.sm_poll_backoff,
            lock_writes=params.lock_writes,
        )
        for rank in range(config.n_workers)
    ]
    system = MedeaSystem(config)
    if observer is not None:
        observer(system)
    system.load_programs(factories)
    total = system.run(max_cycles=max_cycles)

    marks = {label: cycle for cycle, rank, label in system.notes if rank == 0}
    if "start" not in marks:
        raise SimulationError("rank 0 never reached the start barrier")
    boundaries = [marks["start"]]
    for t in range(1, params.iterations + 1):
        label = f"iter:{t}"
        if label not in marks:
            raise SimulationError(f"missing iteration mark {label}")
        boundaries.append(marks[label])
    iteration_cycles = [
        boundaries[i + 1] - boundaries[i] for i in range(params.iterations)
    ]
    measured = iteration_cycles[params.warmup :]
    cycles_per_iteration = sum(measured) / len(measured)

    validated = True
    max_abs_error = 0.0
    if params.validate:
        expected = jacobi_reference(initial_grid(params.n), params.iterations)
        simulated = extract_grid(system, params.n, strips, model, params.iterations)
        validated = bool(np.array_equal(simulated, expected))
        max_abs_error = float(np.max(np.abs(simulated - expected)))

    result = JacobiResult(
        params=params,
        config_label=config.label(),
        total_cycles=total,
        iteration_cycles=iteration_cycles,
        cycles_per_iteration=cycles_per_iteration,
        validated=validated,
        max_abs_error=max_abs_error,
        stats=system.collect_stats(),
    )
    if keep_system:
        result.stats["system"] = system  # for interactive inspection
    return result


def extract_grid(
    system: MedeaSystem,
    n: int,
    strips: list[Strip],
    model: JacobiModel,
    iterations: int,
) -> np.ndarray:
    """Read the final grid out of the simulated memory hierarchy.

    Reads go through :meth:`MedeaSystem.debug_read_double`, which sees
    dirty cache lines, so no artificial end-of-run flush is needed (and
    the measured iterations stay unpolluted).
    """
    stride = row_stride(n)
    final_is_b = iterations % 2 == 1
    grid = initial_grid(n)
    if model is JacobiModel.HYBRID_FULL:
        for strip in strips:
            if strip.empty:
                continue
            base_a, base_b = strip_grid_bases(
                n, strip.n_rows, system.map.private_base(strip.rank)
            )
            base = base_b if final_is_b else base_a
            for r in range(1, strip.n_rows + 1):
                global_row = strip.first_row - 1 + r
                for j in range(1, n - 1):
                    grid[global_row, j] = system.debug_read_double(
                        base + r * stride + j * 8
                    )
        return grid
    base_a, base_b = shared_grid_bases(n, system.map.shared.base)
    base = base_b if final_is_b else base_a
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            grid[i, j] = system.debug_read_double(base + i * stride + j * 8)
    return grid
