"""Row-block partitioning of the Jacobi grid across workers.

The interior rows ``1 .. n-2`` are split into contiguous strips, one per
worker, extras going to the lowest ranks.  With more workers than interior
rows, trailing ranks own zero rows — they still join every barrier (the
paper runs 16x16 on up to 15 cores, where exactly this happens).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class Strip:
    """The contiguous block of interior rows owned by one worker."""

    rank: int
    first_row: int
    n_rows: int

    @property
    def last_row(self) -> int:
        """Last owned row (undefined when empty)."""
        return self.first_row + self.n_rows - 1

    @property
    def empty(self) -> bool:
        return self.n_rows == 0


def partition_interior(n: int, n_workers: int) -> list[Strip]:
    """Split interior rows of an ``n x n`` grid over ``n_workers`` ranks."""
    if n < 3:
        raise ConfigError(f"grid must be at least 3x3, got {n}")
    if n_workers < 1:
        raise ConfigError(f"need at least one worker, got {n_workers}")
    interior = n - 2
    base = interior // n_workers
    extra = interior % n_workers
    strips = []
    row = 1
    for rank in range(n_workers):
        count = base + (1 if rank < extra else 0)
        strips.append(Strip(rank, row, count))
        row += count
    assert row == n - 1
    return strips


def prev_owner(strips: list[Strip], rank: int) -> int | None:
    """Rank owning the row just above this strip; None at the top boundary."""
    strip = strips[rank]
    if strip.empty or strip.first_row == 1:
        return None
    target = strip.first_row - 1
    for other in strips:
        if not other.empty and other.first_row <= target <= other.last_row:
            return other.rank
    raise AssertionError("contiguous partition must cover every interior row")


def next_owner(strips: list[Strip], rank: int) -> int | None:
    """Rank owning the row just below this strip; None at the bottom boundary."""
    strip = strips[rank]
    if strip.empty or strip.last_row == len_interior_end(strips):
        return None
    target = strip.last_row + 1
    for other in strips:
        if not other.empty and other.first_row <= target <= other.last_row:
            return other.rank
    raise AssertionError("contiguous partition must cover every interior row")


def len_interior_end(strips: list[Strip]) -> int:
    """Index of the last interior row covered by the partition."""
    last = 0
    for strip in strips:
        if not strip.empty:
            last = max(last, strip.last_row)
    return last
