"""Parallel Jacobi 2-D solver — the paper's benchmark application.

Three programming models, matching Section III's comparison:

* ``hybrid_full`` — data exchange *and* synchronization via message
  passing: each worker keeps its strip in its private (coherence-free)
  segment, halo rows travel as eMPI messages, barriers are eMPI token
  exchanges.  This is "Medea" in Figs. 6-9.
* ``hybrid_sync`` — data through shared memory with the software
  flush/invalidate protocol; only synchronization uses message passing.
* ``pure_sm`` — data *and* synchronization through shared memory: the
  barrier is a lock-protected counter plus an uncached spin flag, all
  through the MPMMU.

Every variant is validated bit-for-bit against the numpy reference in
:mod:`repro.apps.jacobi.reference`.
"""

from repro.apps.jacobi.driver import JacobiParams, JacobiResult, run_jacobi
from repro.apps.jacobi.models import JacobiModel, make_jacobi_program
from repro.apps.jacobi.partition import Strip, next_owner, partition_interior, prev_owner
from repro.apps.jacobi.reference import initial_grid, jacobi_reference, step_reference

__all__ = [
    "JacobiModel",
    "JacobiParams",
    "JacobiResult",
    "Strip",
    "initial_grid",
    "jacobi_reference",
    "make_jacobi_program",
    "next_owner",
    "partition_interior",
    "prev_owner",
    "run_jacobi",
    "step_reference",
]
