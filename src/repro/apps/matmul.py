"""Tiled parallel matrix multiply — a collective-heavy workload.

``C = A x B`` with the inner (k) dimension split across workers: rank r
owns a contiguous k-slice, holds the matching columns of A and rows of B,
and computes a full-size *partial* product over its slice.  Two
collectives carry all the communication:

* **row broadcast** — rank 0 generates A and broadcasts it row by row;
  each rank keeps only the columns of its k-slice;
* **partial-sum reduce** — the partial products are combined to rank 0
  tile by tile (``tile`` rows of C per reduce), an elementwise-sum
  reduction over vectors of ``tile * n`` doubles.

Both collectives run over either programming model (message passing or
the shared-memory MPMMU path) and either algorithm (linear or binomial
tree), making every run a four-way comparison point.  The result is
validated bit for bit against :func:`reference_matmul`, which replicates
the per-slice accumulation order and the reduce combine order exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.apps.dotproduct import chunks_for
from repro.empi.collectives import (
    CollectiveAlgorithm,
    CommModel,
    make_comm,
    reference_reduce,
)
from repro.errors import ConfigError
from repro.system.config import SystemConfig
from repro.system.medea import MedeaSystem


def a_value(i: int, k: int) -> float:
    """Deterministic A entries: smooth, sign-varying, bit-portable."""
    return math.sin(0.2 * i + 0.11 * k) + 1.0


def b_value(k: int, j: int) -> float:
    """Deterministic B entries."""
    return math.cos(0.13 * k - 0.07 * j) - 0.5


@dataclass
class MatmulParams:
    """One matrix-multiply experiment."""

    n: int = 8
    tile: int = 2
    model: CommModel | str = CommModel.EMPI
    algorithm: CollectiveAlgorithm | str = CollectiveAlgorithm.LINEAR
    validate: bool = True

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigError(f"matrix must be at least 1x1, got {self.n}")
        if not (1 <= self.tile <= self.n):
            raise ConfigError(
                f"tile must be in [1, {self.n}], got {self.tile}"
            )
        self.model = CommModel.parse(self.model)
        self.algorithm = CollectiveAlgorithm.parse(self.algorithm)


@dataclass
class MatmulResult:
    params: MatmulParams
    config_label: str
    total_cycles: int
    stage_cycles: int
    compute_cycles: int
    reduce_cycles: int
    value: list[list[float]]
    expected: list[list[float]]
    stats: dict = field(repr=False, default_factory=dict)

    @property
    def validated(self) -> bool:
        return self.value == self.expected


def reference_matmul(
    n: int,
    n_workers: int,
    tile: int,
    algorithm: CollectiveAlgorithm | str = CollectiveAlgorithm.LINEAR,
) -> list[list[float]]:
    """The exact C the machine must produce (same accumulation orders)."""
    chunks = chunks_for(n, n_workers)
    partials = []
    for chunk in chunks:
        rows = []
        for i in range(n):
            row = []
            for j in range(n):
                acc = 0.0
                for k in range(chunk.first_row, chunk.first_row + chunk.n_rows):
                    acc += a_value(i, k) * b_value(k, j)
                row.append(acc)
            rows.append(row)
        partials.append(rows)
    c_rows: list[list[float]] = []
    for tile_start in range(0, n, tile):
        rows = range(tile_start, min(tile_start + tile, n))
        vectors = [
            [partial[i][j] for i in rows for j in range(n)]
            for partial in partials
        ]
        combined = reference_reduce(vectors, 0, "sum", algorithm)
        for index, __ in enumerate(rows):
            c_rows.append(combined[index * n:(index + 1) * n])
    return c_rows


def _make_program(params: MatmulParams, chunks, rank: int,
                  results: dict[int, list[list[float]]]):
    def program(ctx):
        n = params.n
        tile = params.tile
        chunk = chunks[rank]
        k_first = chunk.first_row
        k_size = chunk.n_rows
        cost = ctx.cost
        comm = make_comm(
            ctx, params.model, params.algorithm, max_values=tile * n
        )
        # Private staging: A columns of the k-slice (row-major over i),
        # then B rows of the k-slice, then (rank 0 only) the C result.
        a_base = ctx.private_base
        b_base = a_base + n * k_size * 8
        c_base = b_base + k_size * n * 8

        if rank == 0:
            yield ctx.note("stage_start")

        # Row broadcast: rank 0 streams A one row at a time; every rank
        # stages only the columns its k-slice multiplies.  The broadcast
        # is non-blocking (ibcast) and double-buffered: row i+1 is posted
        # before row i's columns are staged, and the stores run inside
        # overlap() so the engine progresses the next row's broadcast
        # underneath them.  Data and combine orders are untouched, so the
        # result stays bit-identical to reference_matmul.
        def _store_columns(row, i):
            for kk in range(k_size):
                yield from ctx.store_double(
                    a_base + (i * k_size + kk) * 8, row[k_first + kk]
                )

        def _a_row(i):
            return [a_value(i, k) for k in range(n)] if rank == 0 else None

        request = yield from comm.ibcast(0, _a_row(0), n)
        for i in range(n):
            row = yield from comm.wait(request)
            if i + 1 < n:
                request = yield from comm.ibcast(0, _a_row(i + 1), n)
            yield from comm.overlap(_store_columns(row, i))
        # B rows of the slice are this rank's own data.
        for kk in range(k_size):
            for j in range(n):
                yield from ctx.store_double(
                    b_base + (kk * n + j) * 8, b_value(k_first + kk, j)
                )
        yield from comm.barrier()
        if rank == 0:
            yield ctx.note("compute_start")

        # Full-size partial product over the owned k-slice.
        mac_cost = cost.fp_mul + cost.fp_add + cost.loop_overhead
        partial: list[list[float]] = []
        for i in range(n):
            row_out = []
            for j in range(n):
                acc = 0.0
                for kk in range(k_size):
                    a = yield from ctx.load_double(a_base + (i * k_size + kk) * 8)
                    b = yield from ctx.load_double(b_base + (kk * n + j) * 8)
                    acc += a * b
                    yield ("compute", mac_cost)
                row_out.append(acc)
            partial.append(row_out)
        yield from comm.barrier()
        if rank == 0:
            yield ctx.note("reduce_start")

        # Partial-sum reduce, tile rows of C at a time.
        c_rows: list[list[float]] = []
        for tile_start in range(0, n, tile):
            rows = range(tile_start, min(tile_start + tile, n))
            vector = [partial[i][j] for i in rows for j in range(n)]
            combined = yield from comm.reduce(0, vector, op="sum")
            if rank == 0:
                for index, i in enumerate(rows):
                    row = combined[index * n:(index + 1) * n]
                    for j in range(n):
                        yield from ctx.store_double(
                            c_base + (i * n + j) * 8, row[j]
                        )
                    c_rows.append(row)
        if rank == 0:
            yield ctx.note("reduce_done")
            results[0] = c_rows

    return program


def run_matmul(config: SystemConfig, params: MatmulParams,
               max_cycles: int | None = None) -> MatmulResult:
    """Run one matrix-multiply experiment on one architecture point."""
    params = MatmulParams(
        params.n, params.tile, params.model, params.algorithm, params.validate
    )
    chunks = chunks_for(params.n, config.n_workers)
    results: dict[int, list[list[float]]] = {}
    system = MedeaSystem(config)
    system.load_programs([
        _make_program(params, chunks, rank, results)
        for rank in range(config.n_workers)
    ])
    total_cycles = system.run(max_cycles=max_cycles)
    marks = {label: cycle for cycle, rank, label in system.notes if rank == 0}
    expected = (
        reference_matmul(params.n, config.n_workers, params.tile,
                         params.algorithm)
        if params.validate else results[0]
    )
    return MatmulResult(
        params=params,
        config_label=config.label(),
        total_cycles=total_cycles,
        stage_cycles=marks["compute_start"] - marks["stage_start"],
        compute_cycles=marks["reduce_start"] - marks["compute_start"],
        reduce_cycles=marks["reduce_done"] - marks["reduce_start"],
        value=results[0],
        expected=expected,
        stats=system.collect_stats(),
    )
