"""Collective microbenchmark: cycles per operation, per backend.

The per-collective analogue of the paper's barrier comparison (Table 1):
run one collective ``repeats`` times on vectors of ``n_values`` doubles
and report the mean cycles per operation, with every delivered vector
checked against the combine-order references.  The DSE harness sweeps
this over collective x algorithm x programming model x mesh size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.empi.collectives import (
    CollectiveAlgorithm,
    CommModel,
    make_comm,
    reference_allreduce,
    reference_reduce,
)
from repro.errors import ConfigError
from repro.system.config import SystemConfig
from repro.system.medea import MedeaSystem

#: The sweepable collective operations.
COLLECTIVES = ("bcast", "reduce", "allreduce", "scatter", "gather")


def bench_value(rank: int, repeat: int, index: int) -> float:
    """Deterministic per-(rank, repeat) input vectors."""
    return math.sin(0.23 * rank + 0.41 * repeat + 0.07 * index) + 0.5


@dataclass
class CollectiveBenchParams:
    """One microbenchmark point."""

    collective: str = "allreduce"
    model: CommModel | str = CommModel.EMPI
    algorithm: CollectiveAlgorithm | str = CollectiveAlgorithm.LINEAR
    n_values: int = 8
    repeats: int = 4
    validate: bool = True

    def __post_init__(self) -> None:
        if self.collective not in COLLECTIVES:
            raise ConfigError(
                f"unknown collective {self.collective!r}; "
                f"use one of {', '.join(COLLECTIVES)}"
            )
        if self.n_values < 1:
            raise ConfigError("need at least one value per vector")
        if self.repeats < 1:
            raise ConfigError("need at least one repeat")
        self.model = CommModel.parse(self.model)
        self.algorithm = CollectiveAlgorithm.parse(self.algorithm)


@dataclass
class CollectiveBenchResult:
    params: CollectiveBenchParams
    config_label: str
    total_cycles: int
    op_cycles: int
    cycles_per_op: float
    validated: bool
    stats: dict = field(repr=False, default_factory=dict)


def _expected(params: CollectiveBenchParams, n_workers: int, repeat: int,
              rank: int, groups: list[list[int]] | None = None):
    """What ``rank`` must hold after one repetition of the collective.

    ``groups`` are the system's chiplet rank groups (None on flat
    topologies) — the ``hier`` allreduce's combine order depends on them.
    """
    contribs = [
        [bench_value(r, repeat, i) for i in range(params.n_values)]
        for r in range(n_workers)
    ]
    collective = params.collective
    if collective == "bcast":
        return contribs[0]
    if collective == "reduce":
        return (
            reference_reduce(contribs, 0, "sum", params.algorithm)
            if rank == 0 else None
        )
    if collective == "allreduce":
        return reference_allreduce(
            contribs, "sum", params.algorithm, groups=groups
        )
    if collective == "scatter":
        return contribs[rank]
    if rank == 0:  # gather
        return contribs
    return None


def _make_program(params: CollectiveBenchParams, rank: int, n_workers: int,
                  results: dict[int, list]):
    def program(ctx):
        comm = make_comm(
            ctx, params.model, params.algorithm, max_values=params.n_values
        )
        collective = params.collective
        yield from comm.barrier()
        if rank == 0:
            yield ctx.note("ops_start")
        outputs = []
        for repeat in range(params.repeats):
            mine = [
                bench_value(rank, repeat, i) for i in range(params.n_values)
            ]
            if collective == "bcast":
                payload = mine if rank == 0 else None
                out = yield from comm.bcast(0, payload, params.n_values)
            elif collective == "reduce":
                out = yield from comm.reduce(0, mine)
            elif collective == "allreduce":
                out = yield from comm.allreduce(mine)
            elif collective == "scatter":
                chunks = None
                if rank == 0:
                    chunks = [
                        [bench_value(r, repeat, i)
                         for i in range(params.n_values)]
                        for r in range(n_workers)
                    ]
                out = yield from comm.scatter(0, chunks, params.n_values)
            else:  # gather
                out = yield from comm.gather(0, mine)
            outputs.append(out)
        yield from comm.barrier()
        if rank == 0:
            yield ctx.note("ops_done")
        results[rank] = outputs

    return program


def run_collective_bench(
    config: SystemConfig,
    params: CollectiveBenchParams,
    max_cycles: int | None = None,
    observer=None,
) -> CollectiveBenchResult:
    """Run one microbenchmark point and validate every delivered vector.

    ``observer`` (if given) is called with the built
    :class:`~repro.system.medea.MedeaSystem` before the run — the same
    capture hook :func:`~repro.apps.cg.run_cg` offers, so trace/analyze
    workloads can hold onto the system for post-run inspection.
    """
    params = CollectiveBenchParams(
        params.collective, params.model, params.algorithm,
        params.n_values, params.repeats, params.validate,
    )
    n_workers = config.n_workers
    results: dict[int, list] = {}
    system = MedeaSystem(config)
    if observer is not None:
        observer(system)
    system.load_programs([
        _make_program(params, rank, n_workers, results)
        for rank in range(n_workers)
    ])
    total_cycles = system.run(max_cycles=max_cycles)
    marks = {label: cycle for cycle, rank, label in system.notes if rank == 0}
    op_cycles = marks["ops_done"] - marks["ops_start"]

    validated = True
    if params.validate:
        groups = system.rank_groups
        for rank in range(n_workers):
            for repeat in range(params.repeats):
                expected = _expected(params, n_workers, repeat, rank, groups)
                if results[rank][repeat] != expected:
                    validated = False
    return CollectiveBenchResult(
        params=params,
        config_label=config.label(),
        total_cycles=total_cycles,
        op_cycles=op_cycles,
        cycles_per_op=op_cycles / params.repeats,
        validated=validated,
        stats=system.collect_stats(),
    )
