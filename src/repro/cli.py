"""Command-line interface: regenerate any paper artifact.

Usage::

    python -m repro fig6            # reduced-scale Fig. 6 regeneration
    python -m repro fig7 --full     # the paper's full 168-point sweep
    python -m repro all --jobs 8    # every experiment
    python -m repro compare         # hybrid vs sync-only vs pure-SM
    python -m repro collectives     # collective x algorithm x model x mesh
    python -m repro hw_collectives  # hardware engine vs software crossover
    python -m repro matmul          # tiled matmul (bcast + reduce)
    python -m repro stream          # producer/consumer pipeline
    python -m repro cg              # CG solver, overlap on/off sweep
    python -m repro fault_sweep     # recovery overhead under seeded faults

Reports are printed and saved under ``--out`` (default ``./results``);
sweep points are cached there too, so derived figures (7, 9) reuse the
execution-time sweeps of figures 6 and 8.
"""

from __future__ import annotations

import argparse
import sys

from repro.dse.experiments import ALL_EXPERIMENTS, DEFAULT_RESULTS_DIR


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="medea",
        description="MEDEA (DATE 2010) reproduction: regenerate paper figures",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="run the paper's full axes (168 points per figure sweep)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for sweeps (default: cpu count - 1)",
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_RESULTS_DIR),
        help="directory for reports and the sweep cache (default: results)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top-20 cumulative entries, "
             "so perf work starts from data rather than guesses",
    )
    return parser


def run_experiment(
    name: str, full: bool | None, jobs: int | None, out: str
) -> str:
    # full=None defers to the MEDEA_FULL environment variable.  Every
    # experiment shares the (full, jobs, cache_dir) signature; inline
    # experiments accept and ignore the sweep arguments.
    report = ALL_EXPERIMENTS[name](full=full, jobs=jobs, cache_dir=out)
    path = report.save(out)
    return f"{report.text}\n[saved to {path}; wall {report.wall_seconds:.1f}s]\n"


def run_experiments(names: list[str], full: bool | None, jobs: int | None,
                    out: str) -> None:
    for name in names:
        print(f"=== {name} ===")
        print(run_experiment(name, full, jobs, out))


def run_profiled(names: list[str], full: bool | None, jobs: int | None,
                 out: str) -> None:
    """Run the experiments under cProfile and print the hot spots.

    Sweeps are forced to ``jobs=1``: cProfile only sees this process, so
    a multiprocessing pool would leave the profile full of IPC waits
    instead of the simulator functions the flag exists to surface.
    """
    import cProfile
    import io
    import pstats

    if jobs is not None and jobs != 1:
        print(f"--profile forces --jobs 1 (was {jobs}): child processes "
              f"are invisible to cProfile", file=sys.stderr)
    profile = cProfile.Profile()
    profile.enable()
    try:
        run_experiments(names, full, 1, out)
    finally:
        profile.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profile, stream=stream)
        stats.sort_stats("cumulative").print_stats(20)
        print("=== profile (top 20 by cumulative time) ===")
        print(stream.getvalue())


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    full = True if args.full else None  # None -> honour MEDEA_FULL
    if args.profile:
        run_profiled(names, full, args.jobs, args.out)
    else:
        run_experiments(names, full, args.jobs, args.out)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
