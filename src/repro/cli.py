"""Command-line interface: regenerate any paper artifact.

Usage::

    python -m repro list            # every experiment with its help line
    python -m repro fig6            # reduced-scale Fig. 6 regeneration
    python -m repro fig7 --full     # the paper's full 168-point sweep
    python -m repro all --jobs 8    # every experiment
    python -m repro fig6 --backend inline --jobs 1   # deterministic baseline
    python -m repro fig6 --fresh    # ignore cached points, recompute all
    python -m repro fig6 --retry 2  # retry failed points twice before giving up
    python -m repro trace cg --out trace.json        # Perfetto-openable timeline
    python -m repro analyze cg --out report.json     # where-did-cycles-go report

Reports are printed and saved under ``--out`` (default ``./results``);
sweep points are cached there too — incrementally, so an interrupted
sweep resumes where it died — and derived figures (7, 9) reuse the
execution-time sweeps of figures 6 and 8 from the shared warm cache.
"""

from __future__ import annotations

import argparse
import sys

from repro.dse.executor import EXECUTOR_BACKENDS
from repro.dse.experiments import ALL_EXPERIMENTS, DEFAULT_RESULTS_DIR


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="medea",
        description="MEDEA (DATE 2010) reproduction: regenerate paper figures",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["all", "list"],
        help="which paper artifact to regenerate ('list' shows them all)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="run the paper's full axes (168 points per figure sweep)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for sweeps (default: cpu count - 1)",
    )
    parser.add_argument(
        "--backend", choices=sorted(EXECUTOR_BACKENDS), default=None,
        help="sweep executor backend (default: process pool, or inline "
             "when --jobs 1)",
    )
    parser.add_argument(
        "--fresh", dest="resume", action="store_false", default=True,
        help="ignore cached sweep points and recompute everything "
             "(the recomputed points still persist)",
    )
    parser.add_argument(
        "--retry", type=int, default=0, metavar="N",
        help="retry failed sweep points up to N extra rounds (default: 0)",
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_RESULTS_DIR),
        help="directory for reports and the sweep cache (default: results)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top-20 cumulative entries, "
             "so perf work starts from data rather than guesses",
    )
    return parser


def list_experiments() -> str:
    """The ``medea list`` table, straight from the registry."""
    width = max(len(name) for name in ALL_EXPERIMENTS)
    lines = [
        f"  {name:<{width}}  [{experiment.default_scale}]  {experiment.help}"
        for name, experiment in sorted(ALL_EXPERIMENTS.items())
    ]
    return "available experiments:\n" + "\n".join(lines) + "\n"


def run_experiment(
    name: str, full: bool | None, jobs: int | None, out: str,
    backend: str | None = None, resume: bool = True, retries: int = 0,
) -> str:
    # full=None defers to the MEDEA_FULL environment variable.  Every
    # registered experiment runs through the sweep service with the same
    # backend/resume/retry policy.
    report = ALL_EXPERIMENTS[name](
        full=full, jobs=jobs, cache_dir=out, backend=backend,
        resume=resume, retries=retries,
    )
    path = report.save(out)
    return f"{report.text}\n[saved to {path}; wall {report.wall_seconds:.1f}s]\n"


def run_experiments(names: list[str], full: bool | None, jobs: int | None,
                    out: str, backend: str | None = None,
                    resume: bool = True, retries: int = 0) -> None:
    for name in names:
        print(f"=== {name} ===")
        print(run_experiment(name, full, jobs, out, backend=backend,
                             resume=resume, retries=retries))


def run_profiled(names: list[str], full: bool | None, jobs: int | None,
                 out: str, backend: str | None = None,
                 resume: bool = True, retries: int = 0) -> None:
    """Run the experiments under cProfile and print the hot spots.

    Each sweep point is profiled on its own and the per-point ``pstats``
    merged into one cumulative table, so the attribution reflects the
    simulated workloads rather than one undifferentiated blob.  Sweeps
    are forced to ``--backend inline --jobs 1`` (cProfile only sees this
    process; a pool would leave the profile full of IPC waits) and
    ``--fresh`` (a cached point never runs, so it would profile
    nothing).
    """
    import io
    import pstats

    from repro.dse import executor as executor_module

    if jobs is not None and jobs != 1:
        print(f"--profile forces --jobs 1 (was {jobs}): child processes "
              f"are invisible to cProfile", file=sys.stderr)
    if resume:
        print("--profile forces --fresh: cached points never run, so "
              "resuming would profile nothing", file=sys.stderr)
    sink: list = []
    executor_module.PROFILE_SINK = sink
    try:
        run_experiments(names, full, 1, out, backend="inline",
                        resume=False, retries=retries)
    finally:
        executor_module.PROFILE_SINK = None
        if sink:
            stream = io.StringIO()
            stats = pstats.Stats(sink[0], stream=stream)
            for profile in sink[1:]:
                stats.add(profile)
            stats.sort_stats("cumulative").print_stats(20)
            print(f"=== profile ({len(sink)} points merged, top 20 by "
                  f"cumulative time) ===")
            print(stream.getvalue())
        else:
            print("=== profile: no sweep points ran ===")


def run_trace(argv: list[str]) -> int:
    """``medea trace <workload> [--out trace.json] [--heatmap]``.

    Runs a telemetry-enabled workload and writes its Chrome trace-event
    JSON — request spans, collective phases, overlap regions, DMA
    descriptor lifecycles, NoC ejections, injected faults, and the
    sampled metric timeline — openable in ``ui.perfetto.dev``.
    """
    from repro.telemetry.chrome_trace import write_chrome_trace
    from repro.telemetry.heatmap import render_noc_report
    from repro.telemetry.workloads import TRACE_WORKLOADS

    parser = argparse.ArgumentParser(
        prog="medea trace",
        description="record a workload and export a Perfetto timeline",
    )
    parser.add_argument(
        "workload", choices=sorted(TRACE_WORKLOADS),
        help="which traced workload to run",
    )
    parser.add_argument(
        "--out", default="trace.json",
        help="trace-event JSON output path (default: trace.json)",
    )
    parser.add_argument(
        "--heatmap", action="store_true",
        help="also print the NoC spatial heatmaps",
    )
    args = parser.parse_args(argv)
    workload = TRACE_WORKLOADS[args.workload]
    system, result = workload.run()
    count = write_chrome_trace(system, args.out)
    summary = result.stats["telemetry"]
    print(
        f"traced {args.workload}: {result.total_cycles} cycles, "
        f"{summary['samples']} metric samples "
        f"(interval {summary['sample_interval']}), "
        f"overlap efficiency {summary['sampled_overlap_efficiency']:.4f}"
    )
    print(f"wrote {count} trace events to {args.out} "
          f"(open in ui.perfetto.dev)")
    if args.heatmap:
        from repro.telemetry.attribution import windowed_link_utilization
        windows = windowed_link_utilization(system.telemetry.registry)
        print(render_noc_report(
            system.fabric.spatial_dict(), windows["windows"]
        ))
    return 0


def run_analyze(argv: list[str]) -> int:
    """``medea analyze <workload> [--out report.json] [--heatmap]``.

    Runs a workload and prints the cycle-attribution report: the
    where-did-cycles-go ledger table (per tile and aggregated, checked
    to sum to the elapsed cycles bit-exactly), top stall sources with
    fault/credit context, the ``_execute`` dispatch histogram, windowed
    link utilization, and the critical path of every attributed
    collective op.  ``--out`` also writes the full report as JSON
    (schema checked by ``benchmarks/validate_report.py``).
    """
    import json

    from repro.telemetry.attribution import build_report, render_report
    from repro.telemetry.heatmap import render_noc_report
    from repro.telemetry.workloads import TRACE_WORKLOADS

    parser = argparse.ArgumentParser(
        prog="medea analyze",
        description="run a workload and print its cycle-attribution report",
    )
    parser.add_argument(
        "workload", choices=sorted(TRACE_WORKLOADS),
        help="which workload to analyze",
    )
    parser.add_argument(
        "--out", default=None, metavar="REPORT.json",
        help="also write the full report as JSON",
    )
    parser.add_argument(
        "--heatmap", action="store_true",
        help="also print the NoC spatial heatmaps with the windowed "
             "utilization view",
    )
    args = parser.parse_args(argv)
    workload = TRACE_WORKLOADS[args.workload]
    system, __ = workload.run()
    report = build_report(system, workload=args.workload)
    print(render_report(report))
    if args.heatmap:
        windows = report["links"]["windows"] if report["links"] else None
        print()
        print(render_noc_report(system.fabric.spatial_dict(), windows))
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=1)
        print(f"\nwrote report to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "trace":
        # The trace/analyze subcommands have their own argument sets;
        # intercept them before the positional-choice experiment parser.
        return run_trace(argv[1:])
    if argv and argv[0] == "analyze":
        return run_analyze(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        print(list_experiments(), end="")
        return 0
    names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    full = True if args.full else None  # None -> honour MEDEA_FULL
    if args.profile:
        run_profiled(names, full, args.jobs, args.out,
                     resume=args.resume, retries=args.retry)
    else:
        run_experiments(names, full, args.jobs, args.out,
                        backend=args.backend, resume=args.resume,
                        retries=args.retry)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
